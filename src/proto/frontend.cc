#include "src/proto/frontend.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <time.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "src/http/tagging.h"
#include "src/net/socket.h"
#include "src/obs/process_stats.h"
#include "src/util/logging.h"

namespace lard {

namespace {

constexpr char kUnavailableReply[] =
    "HTTP/1.0 503 Service Unavailable\r\nContent-Length: 0\r\n\r\n";

// Fixed indices into the front-end's TimeSeriesStore; kFeSeriesNames order is
// the AddSeries order in the constructor, which fixes the Append indices.
enum FeSeries : int {
  kSConnRate = 0,
  kSHandoffRate,
  kSConsultRate,
  kSReplayRate,
  kSGiveupRate,
  kSRejectRate,
  kSOpenConns,
  kSActiveNodes,
  kSLoadSkew,
  kSWakeupP99Us,
  kSPendingTasks,
  kSRssBytes,
  kSOpenFds,
  kSIdleCloseRate,
  kSConnsFeOwned,
  kSConnsHandedOff,
};

constexpr const char* kFeSeriesNames[] = {
    "conn_rate",  "handoff_rate", "consult_rate",  "replay_rate",
    "giveup_rate", "reject_rate",  "open_conns",    "active_nodes",
    "load_skew",  "wakeup_p99_us", "pending_tasks", "rss_bytes",
    "open_fds",   "idle_close_rate", "conns_fe_owned", "conns_handed_off",
};

// Built-in watchdog rules (FrontEndConfig::slo_rules empty). Ceilings are
// prototype-scale: they catch order-of-magnitude regressions (a saturated
// back-end, a stalled loop, a replay storm), not production SLOs.
std::vector<SloRule> DefaultSloRules() {
  std::vector<SloRule> rules;
  SloRule rule;
  rule.name = "be_p99_latency";
  rule.input = "be_p99_latency_us";
  rule.ceiling = 250000.0;  // 250ms per-request p99 at a back-end
  rules.push_back(rule);
  rule = SloRule();
  rule.name = "replay_storm";
  rule.input = "replay_rate";
  rule.ceiling = 50.0;  // replays/s: crash-path churn, not steady state
  rules.push_back(rule);
  rule = SloRule();
  rule.name = "giveup_rate";
  rule.input = "giveup_rate";
  rule.ceiling = 0.0;  // any unreplayable orphan is client-visible
  rules.push_back(rule);
  rule = SloRule();
  rule.name = "loop_wakeup_delay";
  rule.input = "wakeup_p99_us";
  rule.ceiling = 100000.0;  // 100ms timer/post wakeup p99: a stalled loop
  rules.push_back(rule);
  rule = SloRule();
  rule.name = "backend_load_skew";
  rule.input = "load_skew";
  rule.ceiling = 4.0;  // max/mean connection skew across live back-ends
  rules.push_back(rule);
  return rules;
}

}  // namespace

// Last-reported disk queue length per back-end — the dispatcher's
// BackendStatsProvider view (updated from kDiskReport messages, heartbeats
// and consult piggybacks; all under state_mutex_). Grows as nodes join.
class FrontEnd::DiskTable final : public BackendStatsProvider {
 public:
  explicit DiskTable(int num_nodes) : queue_lengths_(static_cast<size_t>(num_nodes), 0) {}
  int DiskQueueLength(NodeId node) const override {
    return static_cast<size_t>(node) < queue_lengths_.size()
               ? queue_lengths_[static_cast<size_t>(node)]
               : 0;
  }
  void Update(NodeId node, int length) {
    if (static_cast<size_t>(node) >= queue_lengths_.size()) {
      queue_lengths_.resize(static_cast<size_t>(node) + 1, 0);
    }
    queue_lengths_[static_cast<size_t>(node)] = length;
  }

 private:
  std::vector<int> queue_lengths_;
};

FrontEnd::FrontEnd(const FrontEndConfig& config, EventLoopGroup* loops,
                   const TargetCatalog* catalog)
    : config_(config), loops_(loops), loop_(nullptr), catalog_(catalog),
      journal_(config.replay_journal) {
  LARD_CHECK(loops_ != nullptr);
  idle_timeout_ms_.store(config_.idle_timeout_ms, std::memory_order_relaxed);
  loop_ = loops_->loop(0);
  LARD_CHECK(catalog_ != nullptr);
  LARD_CHECK(config_.mechanism == Mechanism::kSingleHandoff ||
             config_.mechanism == Mechanism::kBackEndForwarding ||
             config_.mechanism == Mechanism::kMultipleHandoff ||
             config_.mechanism == Mechanism::kRelayingFrontEnd)
      << "prototype supports single/multiple handoff, BE forwarding and relaying";
  disk_table_ = std::make_unique<DiskTable>(config_.num_nodes);
  LARD_CHECK(config_.num_frontends > 0 && config_.fe_id >= 0 &&
             config_.fe_id < config_.num_frontends);
  if (config_.num_frontends > 1) {
    mesh_ = std::make_unique<MeshStateTable>(static_cast<uint32_t>(config_.fe_id));
  }

  // Trace ids are connection ids; the per-shard id blocks below also make
  // every trace id cluster-unique with no extra plumbing.
  tracer_ = config_.tracer;

  // One shard per loop. Connection ids are a shared namespace at the
  // back-ends (their client tables and every control message key on them),
  // so each replica mints from its own 48-bit block — and within a replica
  // each shard mints from its own 40-bit sub-block, so two loops never hand
  // off the same id without ever synchronizing on a counter. Shard 0's first
  // id is (fe_id << 48) + 1, exactly what the one-loop front-end minted.
  for (int k = 0; k < loops_->size(); ++k) {
    auto shard = std::make_unique<LoopShard>();
    shard->loop = loops_->loop(k);
    shard->index = k;
    shard->next_conn_id = (static_cast<ConnId>(config_.fe_id) << 48) |
                          (static_cast<ConnId>(k) << 40);
    if (tracer_ != nullptr) {
      shard->trace_ring = tracer_->Ring(
          k == 0 ? "fe" + std::to_string(config_.fe_id)
                 : "fe" + std::to_string(config_.fe_id) + "." + std::to_string(k));
    }
    shards_.push_back(std::move(shard));
  }
  trace_ring_ = shards_[0]->trace_ring;

  DispatcherConfig dispatch_config;
  dispatch_config.policy = config_.policy;
  dispatch_config.policy_name = config_.policy_name;
  dispatch_config.mechanism = config_.mechanism;
  dispatch_config.params = config_.params;
  dispatch_config.num_nodes = config_.num_nodes;
  dispatch_config.node_weights = config_.node_weights;
  dispatch_config.virtual_cache_bytes = config_.virtual_cache_bytes;
  // Gauges and the lard_node_load family describe the cluster once; in a
  // replicated tier only replica 0 publishes them.
  dispatch_config.metrics = config_.fe_id == 0 ? config_.metrics : nullptr;
  dispatch_config.remote_loads = mesh_.get();
  dispatcher_ = std::make_unique<Dispatcher>(dispatch_config, catalog_, disk_table_.get());

  if (config_.metrics != nullptr) {
    metric_active_nodes_ = config_.metrics->Gauge("lard_cluster_active_nodes");
    metric_active_nodes_->Set(config_.num_nodes);
    metric_auto_removals_ = config_.metrics->Counter("lard_cluster_auto_removals_total");
    metric_heartbeats_ = config_.metrics->Counter("lard_fe_heartbeats_total");
    metric_connections_ = config_.metrics->Counter("lard_fe_connections_total");
    metric_rehandoffs_ = config_.metrics->Counter("lard_fe_rehandoffs_total");
    metric_replays_ = config_.metrics->Counter("lard_fe_replays_total");
    metric_replay_giveups_ = config_.metrics->Counter("lard_fe_replay_giveups_total");
    metric_idle_closes_ = config_.metrics->Counter("lard_fe_idle_closes_total");
    if (config_.num_frontends > 1) {
      // The unlabelled instruments stay cluster totals (every replica
      // increments them); the {fe="k"} twins attribute work to a replica.
      const int fe = config_.fe_id;
      metric_fe_connections_ = config_.metrics->Counter(
          MetricsRegistry::WithFe("lard_fe_connections_total", fe));
      metric_fe_handoffs_ =
          config_.metrics->Counter(MetricsRegistry::WithFe("lard_fe_handoffs_total", fe));
      metric_fe_rehandoffs_ =
          config_.metrics->Counter(MetricsRegistry::WithFe("lard_fe_rehandoffs_total", fe));
      metric_mesh_epoch_ =
          config_.metrics->Gauge(MetricsRegistry::WithFe("lard_mesh_epoch", fe));
      metric_mesh_lag_ms_ =
          config_.metrics->Gauge(MetricsRegistry::WithFe("lard_mesh_gossip_lag_ms", fe));
      metric_mesh_peers_ =
          config_.metrics->Gauge(MetricsRegistry::WithFe("lard_mesh_peers", fe));
      metric_mesh_divergence_ =
          config_.metrics->Gauge(MetricsRegistry::WithFe("lard_mesh_divergence", fe));
      metric_gossip_sent_ = config_.metrics->Counter(
          MetricsRegistry::WithFe("lard_mesh_deltas_sent_total", fe));
      metric_gossip_applied_ = config_.metrics->Counter(
          MetricsRegistry::WithFe("lard_mesh_deltas_applied_total", fe));
    }
  }

  if (config_.telemetry_interval_ms > 0) {
    TimeSeriesConfig ts;
    ts.interval_ms = static_cast<int>(config_.telemetry_interval_ms);
    telemetry_ = std::make_unique<TimeSeriesStore>(ts);
    for (const char* name : kFeSeriesNames) {
      telemetry_->AddSeries(name);  // AddSeries order == FeSeries indices
    }
    std::vector<SloRule> rules =
        config_.slo_rules.empty() ? DefaultSloRules() : config_.slo_rules;
    watchdog_ = std::make_unique<SloWatchdog>("fe" + std::to_string(config_.fe_id),
                                              std::move(rules));
  }
}

FrontEnd::~FrontEnd() {
  // First: deferred tasks (posted erases, health/retire timers, cross-loop
  // adopts and handoff completions) drained after this point become no-ops
  // instead of touching freed state.
  alive_.Invalidate();
}

int64_t FrontEnd::NowMs() const {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

void FrontEnd::AttachControl(NodeId node, UniqueFd control_fd) {
  if (static_cast<size_t>(node) >= nodes_.size()) {
    nodes_.resize(static_cast<size_t>(node) + 1);
  }
  NodeLink& link = nodes_[static_cast<size_t>(node)];
  LARD_CHECK_OK(SetNonBlocking(control_fd.get(), true));
  link.control = std::make_unique<FramedChannel>(loop_, std::move(control_fd));
  link.last_heartbeat_ms = NowMs();
  link.heartbeat_seen = false;
  link.control->set_on_message([this, node](uint8_t type, std::string payload, UniqueFd passed_fd) {
    OnControlMessage(node, type, std::move(payload), std::move(passed_fd));
  });
  // EOF/error means the back-end process died (or closed on us): remove it.
  // Deferred — we may be inside the channel's own event handler, and a Send
  // under state_mutex_ can fail synchronously (the posted task re-locks).
  link.control->set_on_close([this, node]() {
    loop_->Post(alive_.Guard([this, node]() {
      MutexLock lock(&state_mutex_);
      RemoveNodeInternal(node, "control session lost");
    }));
  });
  link.control->Start();
  // Identify this replica to the back-end (a single-FE tier is replica 0 of
  // a 1-replica tier; the hello is harmless and keeps one code path).
  link.control->Send(static_cast<uint8_t>(ControlMsg::kFeHello),
                     EncodeU32(static_cast<uint32_t>(config_.fe_id)));
  if (config_.metrics != nullptr) {
    link.handoff_counter =
        config_.metrics->Counter(MetricsRegistry::WithNode("lard_fe_handoffs_total", node));
  }
}

void FrontEnd::Start(std::vector<UniqueFd> control_fds) {
  LARD_CHECK(control_fds.size() == static_cast<size_t>(config_.num_nodes));
  for (int node = 0; node < config_.num_nodes; ++node) {
    AttachControl(node, std::move(control_fds[static_cast<size_t>(node)]));
  }

  // The bound port is published into the atomic only once the listener is
  // up: AddFrontEnd installs the replica in Cluster::fes_ before Start runs
  // on this loop, so ports() may already be reading port() concurrently.
  uint16_t bound_port = 0;
  if (shards_.size() == 1) {
    // One loop: the historic single listener, no SO_REUSEPORT involved.
    auto listener = ListenTcp(config_.listen_port, &bound_port);
    LARD_CHECK(listener.ok()) << listener.status().ToString();
    shards_[0]->listener = std::move(listener.value());
  } else {
    // One SO_REUSEPORT listener per shard: the kernel spreads accepts across
    // the loops with no cross-thread wakeups or fd passing.
    bool reuseport_ok = true;
    auto first = ListenTcpReusePort(config_.listen_port, &bound_port);
    if (first.ok()) {
      shards_[0]->listener = std::move(first.value());
      for (size_t k = 1; k < shards_.size(); ++k) {
        auto next = ListenTcpReusePort(bound_port, nullptr);
        if (!next.ok()) {
          reuseport_ok = false;
          break;
        }
        shards_[k]->listener = std::move(next.value());
      }
    } else {
      reuseport_ok = false;
    }
    if (!reuseport_ok) {
      // Portable fallback: a single loop-0 listener, accepted fds handed to
      // the shards round-robin (one posted task per connection).
      for (auto& shard : shards_) {
        shard->listener = UniqueFd();
      }
      LARD_LOG(WARNING) << "front-end " << config_.fe_id
                        << ": SO_REUSEPORT unavailable, falling back to fd-handoff accept";
      auto listener = ListenTcp(config_.listen_port, &bound_port);
      LARD_CHECK(listener.ok()) << listener.status().ToString();
      shards_[0]->listener = std::move(listener.value());
      fd_handoff_accept_ = true;
    }
  }
  port_.store(bound_port, std::memory_order_release);

  for (auto& shard_ptr : shards_) {
    LoopShard* shard = shard_ptr.get();
    if (!shard->listener.valid()) {
      continue;
    }
    LARD_CHECK_OK(SetNonBlocking(shard->listener.get(), true));
    // Register is loop-thread-only; shard 0 is this thread, the rest post.
    loops_->RunOn(shard->index, alive_.Guard([this, shard]() {
                    shard->loop->Register(shard->listener.get(), EPOLLIN,
                                          [this, shard](uint32_t events) {
                                            OnAccept(shard, events);
                                          });
                  }));
  }

  if (config_.heartbeat_timeout_ms > 0) {
    ScheduleHealthSweep(std::max<int64_t>(config_.heartbeat_timeout_ms / 4, 25));
  }
  if (MeshEnabled()) {
    {
      MutexLock lock(&state_mutex_);
      UpdateMeshSnapshot();
    }
    loop_->ScheduleAfterMs(std::max<int64_t>(config_.gossip_interval_ms, 1),
                           alive_.Guard([this]() { GossipTick(); }));
  }
  if (telemetry_ != nullptr) {
    loop_->ScheduleAfterMs(config_.telemetry_interval_ms,
                           alive_.Guard([this]() { TelemetryTick(); }));
  }
}

// ---------------------------------------------------------------------------
// The front-end mesh
// ---------------------------------------------------------------------------

void FrontEnd::AttachPeer(uint32_t peer_fe_id, UniqueFd gossip_fd) {
  LARD_CHECK(MeshEnabled()) << "AttachPeer on a single-front-end tier";
  LARD_CHECK(peer_fe_id != static_cast<uint32_t>(config_.fe_id));
  LARD_CHECK_OK(SetNonBlocking(gossip_fd.get(), true));
  auto channel = std::make_unique<FramedChannel>(loop_, std::move(gossip_fd));
  channel->set_on_message([this, peer_fe_id](uint8_t type, std::string payload, UniqueFd) {
    OnPeerMessage(peer_fe_id, type, std::move(payload));
  });
  // Deferred: a failing Send inside GossipTick invokes on_close while
  // state_mutex_ is already held, so the handler must not lock inline.
  channel->set_on_close([this, peer_fe_id]() {
    loop_->Post(alive_.Guard([this, peer_fe_id]() {
      MutexLock lock(&state_mutex_);
      OnPeerClosed(peer_fe_id);
    }));
  });
  channel->Start();
  channel->Send(kGossipHelloFrameType, EncodeU32(static_cast<uint32_t>(config_.fe_id)));
  fe_peers_[peer_fe_id] = std::move(channel);
}

void FrontEnd::OnPeerMessage(uint32_t peer, uint8_t type, std::string payload) {
  if (type == kGossipHelloFrameType) {
    uint32_t announced = 0;
    if (!DecodeU32(payload, &announced) || announced != peer) {
      LARD_LOG(ERROR) << "front-end " << config_.fe_id << ": peer hello mismatch (" << announced
                      << " on channel " << peer << ")";
    }
    return;
  }
  if (type != kGossipFrameType) {
    LARD_LOG(ERROR) << "front-end " << config_.fe_id << ": unexpected mesh frame type "
                    << static_cast<int>(type) << " from peer " << peer;
    return;
  }
  GossipDelta delta;
  if (!DecodeGossipDelta(payload, &delta) || delta.fe_id != peer) {
    LARD_LOG(ERROR) << "front-end " << config_.fe_id << ": bad gossip delta from peer " << peer;
    return;
  }
  MutexLock lock(&state_mutex_);
  if (!mesh_->Apply(delta, NowMs() * 1000)) {
    return;  // stale or regressed; counters already advanced
  }
  if (metric_gossip_applied_ != nullptr) {
    metric_gossip_applied_->Increment();
  }
  // The non-load fields are the peer's membership/weight beliefs: surface
  // how far this replica and the sender disagree (persistently non-zero =
  // somebody missed control-plane news).
  if (metric_mesh_divergence_ != nullptr) {
    metric_mesh_divergence_->Set(
        static_cast<double>(CountBeliefDivergence(delta, *dispatcher_)));
  }
  for (const GossipVcacheHint& hint : delta.hints) {
    dispatcher_->NoteRemoteFetch(hint.node, hint.target);
  }
}

void FrontEnd::OnPeerClosed(uint32_t peer) {
  // FE leave: forget its load contribution; the channel is torn down on the
  // next loop iteration (a queued frame callback may still reference it).
  mesh_->RemovePeer(peer);
  auto it = fe_peers_.find(peer);
  if (it != fe_peers_.end()) {
    std::shared_ptr<FramedChannel> dead(it->second.release());
    fe_peers_.erase(it);
    loop_->Post([dead]() {});
  }
  LARD_LOG(WARNING) << "front-end " << config_.fe_id << ": mesh peer " << peer << " left";
}

void FrontEnd::RecordFetchHints(const std::vector<TargetId>& targets,
                                const std::vector<Assignment>& assignments) {
  if (!MeshEnabled()) {
    return;
  }
  for (size_t i = 0; i < targets.size() && i < assignments.size(); ++i) {
    if (targets[i] == kInvalidTarget || assignments[i].node == kInvalidNode) {
      continue;
    }
    // Extended LARD's no-cache-under-disk-pressure serves leave the target
    // non-resident; telling the peers otherwise would make them route for a
    // hit the node cannot give.
    if (!assignments[i].served_from_cache && !assignments[i].cache_after_miss) {
      continue;
    }
    pending_hints_.insert(MakeHintKey(assignments[i].node, targets[i]));
  }
}

void FrontEnd::GossipTick() {
  MutexLock lock(&state_mutex_);
  const int64_t tick_start_us = TraceNowUs();
  const size_t hint_count = pending_hints_.size();
  std::vector<GossipVcacheHint> hints;
  hints.reserve(pending_hints_.size());
  for (const uint64_t key : pending_hints_) {
    hints.push_back(HintFromKey(key));
  }
  pending_hints_.clear();
  const GossipDelta delta = BuildGossipDelta(static_cast<uint32_t>(config_.fe_id),
                                             ++gossip_seq_, *dispatcher_, std::move(hints));
  const std::string encoded = EncodeGossipDelta(delta);
  // Snapshot the channels: a failing Send invokes on_close synchronously,
  // whose posted cleanup erases the map entry (the channel object itself
  // stays alive until that task runs, so the raw pointers remain valid).
  std::vector<FramedChannel*> channels;
  channels.reserve(fe_peers_.size());
  for (auto& [peer, channel] : fe_peers_) {
    channels.push_back(channel.get());
  }
  for (FramedChannel* channel : channels) {
    if (channel != nullptr && channel->open()) {
      channel->Send(kGossipFrameType, encoded);
      ++gossip_sent_;
      if (metric_gossip_sent_ != nullptr) {
        metric_gossip_sent_->Increment();
      }
    }
  }
  // Gossip rounds are component-scoped (no client connection), so they carry
  // a synthetic per-replica trace id and bypass sampling.
  RecordSpanUnsampled(tracer_, trace_ring_, static_cast<uint64_t>(config_.fe_id) << 48, 0,
                      SpanKind::kGossip, static_cast<int32_t>(config_.fe_id), tick_start_us,
                      TraceNowUs() - tick_start_us, "seq=%llu hints=%zu peers=%zu",
                      static_cast<unsigned long long>(gossip_seq_), hint_count,
                      fe_peers_.size());
  UpdateMeshSnapshot();
  loop_->ScheduleAfterMs(std::max<int64_t>(config_.gossip_interval_ms, 1),
                         alive_.Guard([this]() { GossipTick(); }));
}

void FrontEnd::UpdateMeshSnapshot() {
  const int64_t now_us = NowMs() * 1000;
  std::ostringstream out;
  out << "{\"fe_id\":" << config_.fe_id << ",\"port\":" << port()
      << ",\"membership_epoch\":" << dispatcher_->membership_epoch()
      << ",\"gossip_seq\":" << gossip_seq_ << ",\"deltas_sent\":" << gossip_sent_
      << ",\"deltas_applied\":" << mesh_->deltas_applied()
      << ",\"stale_drops\":" << mesh_->stale_drops()
      << ",\"epoch_regressions\":" << mesh_->epoch_regressions()
      << ",\"gossip_lag_ms\":" << mesh_->OldestPeerAgeUs(now_us) / 1000 << ",\"peers\":[";
  bool first = true;
  for (const MeshStateTable::PeerInfo& peer : mesh_->Peers()) {
    out << (first ? "" : ",") << "{\"fe_id\":" << peer.fe_id << ",\"seq\":" << peer.seq
        << ",\"membership_epoch\":" << peer.membership_epoch
        << ",\"lag_ms\":" << (now_us - peer.last_update_us) / 1000
        << ",\"remote_load\":" << peer.total_load << "}";
    first = false;
  }
  out << "]}";
  {
    MutexLock lock(&mesh_json_mutex_);
    mesh_json_ = out.str();
  }
  if (metric_mesh_epoch_ != nullptr) {
    metric_mesh_epoch_->Set(static_cast<double>(dispatcher_->membership_epoch()));
    metric_mesh_lag_ms_->Set(static_cast<double>(mesh_->OldestPeerAgeUs(now_us)) / 1000.0);
    metric_mesh_peers_->Set(static_cast<double>(mesh_->peer_count()));
  }
}

std::string FrontEnd::DescribeMeshJson() const {
  if (mesh_ == nullptr) {
    return "{\"fe_id\":" + std::to_string(config_.fe_id) + ",\"port\":" + std::to_string(port()) +
           ",\"mesh\":false}";
  }
  MutexLock lock(&mesh_json_mutex_);
  return mesh_json_;
}

// ---------------------------------------------------------------------------
// Telemetry: sampling tick, back-end mirrors, admin snapshots
// ---------------------------------------------------------------------------

void FrontEnd::TelemetryTick() {
  loop_->AssertInLoopThread();  // nodes_, samplers, scratch: loop-0 confined
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  const int64_t now = NowMs();
  const int64_t interval = std::max<int64_t>(config_.telemetry_interval_ms, 1);
  const double dt = telemetry_last_ms_ > 0
                        ? static_cast<double>(now - telemetry_last_ms_) / 1000.0
                        : static_cast<double>(interval) / 1000.0;
  telemetry_last_ms_ = now;

  telemetry_scratch_.clear();
  const auto rate = [dt](CounterRateSampler& sampler, const std::atomic<uint64_t>& counter) {
    return sampler.Sample(counter.load(std::memory_order_relaxed), dt);
  };
  telemetry_scratch_.emplace_back(kSConnRate, rate(rate_conns_, counters_.connections_accepted));
  telemetry_scratch_.emplace_back(kSHandoffRate, rate(rate_handoffs_, counters_.handoffs));
  telemetry_scratch_.emplace_back(kSConsultRate, rate(rate_consults_, counters_.consults));
  const double replay_rate = rate(rate_replays_, counters_.replays);
  telemetry_scratch_.emplace_back(kSReplayRate, replay_rate);
  const double giveup_rate = rate(rate_giveups_, counters_.replay_giveups);
  telemetry_scratch_.emplace_back(kSGiveupRate, giveup_rate);
  telemetry_scratch_.emplace_back(kSRejectRate,
                                  rate(rate_rejected_, counters_.rejected_no_backend));

  size_t open_conns = 0;
  (void)DispatcherCountersSnapshot(&open_conns);
  telemetry_scratch_.emplace_back(kSOpenConns, static_cast<double>(open_conns));

  // Membership + load skew (max/mean reported connections over live nodes);
  // skew is meaningful only while the tier actually carries load.
  int active = 0;
  double conn_sum = 0.0;
  double conn_max = 0.0;
  for (NodeId node = 0; node < static_cast<NodeId>(nodes_.size()); ++node) {
    if (!NodeLive(node)) {
      continue;
    }
    ++active;
    const double conns = static_cast<double>(nodes_[static_cast<size_t>(node)].reported_conns);
    conn_sum += conns;
    conn_max = std::max(conn_max, conns);
  }
  telemetry_scratch_.emplace_back(kSActiveNodes, static_cast<double>(active));
  double load_skew = kNaN;
  if (active > 0 && conn_sum > 0.0) {
    load_skew = conn_max / (conn_sum / static_cast<double>(active));
    telemetry_scratch_.emplace_back(kSLoadSkew, load_skew);
  }

  // Loop health: worst wakeup-delay p99 across this replica's loops this
  // window, plus the pending-task depth summed over the loops. The profiling
  // histograms are labelled "fe<id>" (loop 0) / "fe<id>.<k>" (shard k); the
  // 1 Hz find-or-create lookup is harmless when profiling is off (the empty
  // histogram yields an empty window).
  double wakeup_p99 = kNaN;
  if (config_.metrics != nullptr) {
    if (wakeup_windows_.size() < static_cast<size_t>(loops_->size())) {
      wakeup_windows_.resize(static_cast<size_t>(loops_->size()));
    }
    double pending = 0.0;
    for (int k = 0; k < loops_->size(); ++k) {
      const std::string label =
          k == 0 ? "fe" + std::to_string(config_.fe_id)
                 : "fe" + std::to_string(config_.fe_id) + "." + std::to_string(k);
      const HistogramWindowSampler::Window window = wakeup_windows_[static_cast<size_t>(k)].Sample(
          *config_.metrics->Histogram("lard_loop_wakeup_delay_us{loop=\"" + label + "\"}"));
      if (window.count > 0) {
        wakeup_p99 = std::isnan(wakeup_p99) ? window.p99 : std::max(wakeup_p99, window.p99);
      }
      pending += config_.metrics->Gauge("lard_loop_pending_tasks{loop=\"" + label + "\"}")->value();
    }
    if (!std::isnan(wakeup_p99)) {
      telemetry_scratch_.emplace_back(kSWakeupP99Us, wakeup_p99);
    }
    telemetry_scratch_.emplace_back(kSPendingTasks, pending);
    UpdateProcessMetrics(config_.metrics);  // keeps the /metrics gauges fresh too
  }
  const ProcessStats stats = ReadProcessStats();
  telemetry_scratch_.emplace_back(kSRssBytes, stats.rss_bytes);
  telemetry_scratch_.emplace_back(kSOpenFds, stats.open_fds);
  telemetry_scratch_.emplace_back(kSIdleCloseRate,
                                  rate(rate_idle_closes_, counters_.idle_closes));
  telemetry_scratch_.emplace_back(
      kSConnsFeOwned,
      static_cast<double>(conns_fe_owned_.load(std::memory_order_relaxed)));
  telemetry_scratch_.emplace_back(
      kSConnsHandedOff,
      config_.mechanism == Mechanism::kRelayingFrontEnd ? 0.0
                                                        : static_cast<double>(open_conns));

  telemetry_->Append(now, telemetry_scratch_);

  // Watchdog inputs: this tick's own samples plus the freshest mirrored
  // back-end values. Missing inputs (no telemetry rows yet, idle windows)
  // count as clean inside Evaluate().
  std::map<std::string, double> inputs;
  inputs["replay_rate"] = replay_rate;
  inputs["giveup_rate"] = giveup_rate;
  if (!std::isnan(wakeup_p99)) {
    inputs["wakeup_p99_us"] = wakeup_p99;
  }
  if (!std::isnan(load_skew)) {
    inputs["load_skew"] = load_skew;
  }
  {
    MutexLock lock(&telemetry_mutex_);
    double be_p99 = kNaN;
    double be_queue = kNaN;
    for (const auto& [node, store] : node_telemetry_) {
      const double p99 = store->Latest("latency_p99_us");
      if (!std::isnan(p99)) {
        be_p99 = std::isnan(be_p99) ? p99 : std::max(be_p99, p99);
      }
      const double queue = store->Latest("disk_queue");
      if (!std::isnan(queue)) {
        be_queue = std::isnan(be_queue) ? queue : std::max(be_queue, queue);
      }
    }
    if (!std::isnan(be_p99)) {
      inputs["be_p99_latency_us"] = be_p99;
    }
    if (!std::isnan(be_queue)) {
      inputs["be_max_disk_queue"] = be_queue;
    }
  }
  const HealthStatus status = watchdog_->Evaluate(inputs);

  // Refresh the health snapshot (the DescribeMeshJson pattern: rendered on
  // loop 0, swapped under its own mutex for the admin thread).
  std::ostringstream out;
  out << "{\"fe_id\":" << config_.fe_id << ",\"status\":\"" << HealthStatusName(status)
      << "\",\"transitions\":" << watchdog_->transitions() << ",\"pressure\":"
      << watchdog_->overload().pressure.load(std::memory_order_relaxed)
      << ",\"interval_ms\":" << interval << ",\"active_nodes\":" << active
      << ",\"reasons\":" << watchdog_->ReasonsJson() << ",\"components\":{";
  const auto emit_latest = [&out](const std::string& name, const TimeSeriesStore& store) {
    out << "\"" << name << "\":{\"last_t_ms\":" << store.last_t_ms();
    for (const std::string& series : store.SeriesNames()) {
      const double value = store.Latest(series);
      if (!std::isnan(value)) {
        out << ",\"" << series << "\":" << value;
      }
    }
    out << "}";
  };
  emit_latest("fe" + std::to_string(config_.fe_id), *telemetry_);
  {
    MutexLock lock(&telemetry_mutex_);
    for (const auto& [node, store] : node_telemetry_) {
      out << ",";
      emit_latest("be" + std::to_string(node), *store);
    }
  }
  out << "}}";
  {
    MutexLock lock(&health_json_mutex_);
    health_json_ = out.str();
  }

  loop_->ScheduleAfterMs(interval, alive_.Guard([this]() { TelemetryTick(); }));
}

TimeSeriesStore* FrontEnd::NodeTelemetry(NodeId node) {
  MutexLock lock(&telemetry_mutex_);
  std::unique_ptr<TimeSeriesStore>& slot = node_telemetry_[node];
  if (slot == nullptr) {
    TimeSeriesConfig ts;
    // The rows carry the producer's own timestamps; the interval here only
    // annotates the JSON (the knob is cluster-wide, so ours is its).
    ts.interval_ms = config_.telemetry_interval_ms > 0
                         ? static_cast<int>(config_.telemetry_interval_ms)
                         : 1000;
    slot = std::make_unique<TimeSeriesStore>(ts);
  }
  return slot.get();
}

std::string FrontEnd::DescribeTimeSeriesJson(const std::string& metric,
                                             const std::string& component, int64_t window_ms,
                                             bool include_nodes) const {
  std::ostringstream out;
  bool first = true;
  const std::string self_name = "fe" + std::to_string(config_.fe_id);
  if (telemetry_ != nullptr && (component.empty() || component == self_name)) {
    out << "\"" << self_name << "\":" << telemetry_->RenderJson(metric, window_ms);
    first = false;
  }
  if (include_nodes) {
    MutexLock lock(&telemetry_mutex_);
    for (const auto& [node, store] : node_telemetry_) {
      const std::string name = "be" + std::to_string(node);
      if (!component.empty() && component != name) {
        continue;
      }
      out << (first ? "" : ",") << "\"" << name << "\":" << store->RenderJson(metric, window_ms);
      first = false;
    }
  }
  return out.str();
}

std::string FrontEnd::DescribeHealthJson() const {
  if (watchdog_ == nullptr) {
    return "{}";
  }
  MutexLock lock(&health_json_mutex_);
  // Empty until the first tick fires; callers get a well-formed object.
  return health_json_.empty() ? "{}" : health_json_;
}

void FrontEnd::ScheduleHealthSweep(int64_t period_ms) {
  // The rearm chain is guarded: it dies with the front-end, not the loop.
  loop_->ScheduleAfterMs(period_ms, alive_.Guard([this, period_ms]() {
                           CheckNodeHealth();
                           ScheduleHealthSweep(period_ms);
                         }));
}

void FrontEnd::CheckNodeHealth() {
  MutexLock lock(&state_mutex_);
  const int64_t now = NowMs();
  for (NodeId node = 0; node < static_cast<NodeId>(nodes_.size()); ++node) {
    if (!NodeLive(node)) {
      continue;
    }
    const NodeLink& link = nodes_[static_cast<size_t>(node)];
    if (now - link.last_heartbeat_ms > config_.heartbeat_timeout_ms) {
      RemoveNodeInternal(node, "missed heartbeats");
    }
  }
}

NodeId FrontEnd::AddNode(UniqueFd control_fd, uint16_t backend_http_port, double weight) {
  NodeId node = kInvalidNode;
  {
    MutexLock lock(&state_mutex_);
    node = dispatcher_->AddNode(weight);
    disk_table_->Update(node, 0);
    if (metric_active_nodes_ != nullptr) {
      metric_active_nodes_->Set(dispatcher_->active_node_count());
    }
  }
  AttachControl(node, std::move(control_fd));
  if (config_.mechanism == Mechanism::kRelayingFrontEnd) {
    // Every shard gets its own persistent connection to the new node; the
    // LateralClient must be built (and used) on its owning loop.
    for (auto& shard_ptr : shards_) {
      LoopShard* shard = shard_ptr.get();
      loops_->RunOn(shard->index,
                    alive_.Guard([this, shard, node, backend_http_port]() {
                      shard->loop->AssertInLoopThread();
                      if (static_cast<size_t>(node) >= shard->relays.size()) {
                        shard->relays.resize(static_cast<size_t>(node) + 1);
                      }
                      shard->relays[static_cast<size_t>(node)] =
                          std::make_unique<LateralClient>(shard->loop, backend_http_port,
                                                          config_.lateral_timeout_ms);
                    }));
    }
  }
  LARD_LOG(INFO) << "front-end: node " << node << " joined";
  return node;
}

bool FrontEnd::DrainNode(NodeId node) {
  if (!NodeLive(node)) {
    return false;
  }
  {
    MutexLock lock(&state_mutex_);
    if (!dispatcher_->DrainNode(node)) {
      return false;
    }
    if (metric_active_nodes_ != nullptr) {
      metric_active_nodes_->Set(dispatcher_->active_node_count());
    }
  }
  // Ask the node to give its persistent connections back between batches;
  // they come home as kHandback(target=kInvalidNode) and are re-handed-off.
  nodes_[static_cast<size_t>(node)].control->Send(static_cast<uint8_t>(ControlMsg::kDrain),
                                                  EncodeU32(0));
  LARD_LOG(INFO) << "front-end: node " << node << " draining";
  return true;
}

bool FrontEnd::RemoveNode(NodeId node) {
  MutexLock lock(&state_mutex_);
  if (node < 0 || node >= dispatcher_->num_node_slots()) {
    return false;
  }
  if (retiring_.count(node) != 0) {
    return true;  // removal already in progress
  }
  const NodeState state = dispatcher_->node_state(node);
  // A live node still holding connections retires gracefully: stop new
  // assignments, ask it to give its connections back, and hard-remove once
  // they have migrated (or the grace period expires). Everything else — dead
  // or silent nodes, empty nodes, the last assignable node (nowhere to
  // migrate) — is removed immediately.
  const bool can_retire =
      config_.retire_grace_ms > 0 && NodeLive(node) && state != NodeState::kDead &&
      dispatcher_->ConnectionCountOn(node) > 0 &&
      dispatcher_->active_node_count() > (state == NodeState::kActive ? 1 : 0);
  if (!can_retire) {
    return RemoveNodeInternal(node, "admin remove");
  }
  if (state == NodeState::kActive) {
    (void)dispatcher_->DrainNode(node);
    if (metric_active_nodes_ != nullptr) {
      metric_active_nodes_->Set(dispatcher_->active_node_count());
    }
  }
  retiring_.insert(node);
  nodes_[static_cast<size_t>(node)].control->Send(static_cast<uint8_t>(ControlMsg::kDrain),
                                                  EncodeU32(0));
  loop_->ScheduleAfterMs(config_.retire_grace_ms, alive_.Guard([this, node]() {
                           MutexLock lock(&state_mutex_);
                           if (retiring_.count(node) != 0) {
                             RemoveNodeInternal(node, "retire grace expired");
                           }
                         }));
  LARD_LOG(INFO) << "front-end: node " << node << " retiring ("
                 << dispatcher_->ConnectionCountOn(node) << " connections to migrate)";
  return true;
}

bool FrontEnd::RemoveNodeInternal(NodeId node, const char* reason) {
  if (node < 0 || node >= dispatcher_->num_node_slots()) {
    return false;
  }
  // Admin-initiated removals (including retire completion/expiry) are not
  // detected failures.
  const bool detected_failure = std::strcmp(reason, "admin remove") != 0 &&
                                std::strcmp(reason, "retired") != 0 &&
                                std::strcmp(reason, "retire grace expired") != 0;
  NodeLink* link =
      static_cast<size_t>(node) < nodes_.size() ? &nodes_[static_cast<size_t>(node)] : nullptr;
  // Single failure epoch per node: heartbeat loss and control-session EOF
  // can both fire for one dead node (the EOF arrives as a deferred post);
  // the second detection must be a no-op so orphans are never reassigned or
  // replayed twice.
  if (detected_failure && link != nullptr && link->failure_epoch != 0) {
    return false;
  }
  retiring_.erase(node);
  std::vector<ConnId> orphans;
  const bool dispatcher_removed = dispatcher_->RemoveNode(node, &orphans);
  const bool had_channel = link != nullptr && link->control != nullptr;
  if (!dispatcher_removed && !had_channel) {
    return false;  // already fully removed
  }
  if (detected_failure && link != nullptr) {
    link->failure_epoch = next_failure_epoch_++;
  }
  for (const ConnId conn : orphans) {
    live_in_dispatcher_.erase(conn);
  }
  if (had_channel) {
    link->control.reset();  // closes the session; the back-end sees EOF
  }
  // The failure-replay pass: with the dead channel gone and the node marked
  // dead in the dispatcher, each orphaned connection either continues on a
  // survivor (journal tail replayed over kReplay) or fails cleanly. A
  // connection currently being placed by an outer PickLiveNode is left to
  // that caller.
  uint64_t replayed = 0;
  for (const ConnId conn : orphans) {
    if (conn == placement_in_progress_) {
      continue;
    }
    if (detected_failure) {
      TryReplayOrphan(conn, node);
    }
    if (live_in_dispatcher_.count(conn) == 0) {
      // Not resurrected: release the retained dup so the client sees the
      // connection actually close.
      journal_.Drop(conn);
    } else {
      ++replayed;
    }
  }
  if (detected_failure) {
    counters_.auto_removals.fetch_add(1, std::memory_order_relaxed);
    if (metric_auto_removals_ != nullptr) {
      metric_auto_removals_->Increment();
    }
  }
  if (metric_active_nodes_ != nullptr) {
    metric_active_nodes_->Set(dispatcher_->active_node_count());
  }
  LARD_LOG(WARNING) << "front-end: node " << node << " removed (" << reason << "), "
                    << orphans.size() << " connections orphaned, " << replayed
                    << " replayed onto survivors, " << dispatcher_->active_node_count()
                    << " active nodes remain";
  if (on_node_removed_) {
    on_node_removed_(node);
  }
  return true;
}

void FrontEnd::MaybeFinalizeRetire(NodeId node) {
  if (retiring_.count(node) == 0 || dispatcher_->ConnectionCountOn(node) > 0) {
    return;
  }
  RemoveNodeInternal(node, "retired");
}

void FrontEnd::BurnNodeSlot() {
  MutexLock lock(&state_mutex_);
  const NodeId node = dispatcher_->AddNode(1.0);
  std::vector<ConnId> orphans;
  (void)dispatcher_->RemoveNode(node, &orphans);
  LARD_CHECK(orphans.empty());
  if (static_cast<size_t>(node) >= nodes_.size()) {
    nodes_.resize(static_cast<size_t>(node) + 1);  // keep id indexing aligned
  }
  if (metric_active_nodes_ != nullptr) {
    metric_active_nodes_->Set(dispatcher_->active_node_count());
  }
}

void FrontEnd::SetPolicy(Policy policy) {
  LARD_CHECK(SetPolicyByName(PolicyKey(policy)));
}

bool FrontEnd::SetPolicyByName(const std::string& name) {
  MutexLock lock(&state_mutex_);
  if (!dispatcher_->SetPolicyByName(name)) {
    return false;
  }
  (void)ParsePolicyName(name, &config_.policy);
  LARD_LOG(INFO) << "front-end: policy switched to " << dispatcher_->policy().display_name();
  return true;
}

DispatcherCounters FrontEnd::DispatcherCountersSnapshot(size_t* open_connections) const {
  MutexLock lock(&state_mutex_);
  if (open_connections != nullptr) {
    *open_connections = dispatcher_->open_connections();
  }
  return dispatcher_->counters();
}

int64_t FrontEnd::open_conns_handed_off() const {
  // Relaying keeps every dispatcher-tracked connection shard-owned; in the
  // handoff mechanisms the dispatcher's open set IS the handed-off set (the
  // shard-owned pre-handoff window registers only inside HandoffFlow's own
  // lock scope, invisible here).
  if (config_.mechanism == Mechanism::kRelayingFrontEnd) {
    return 0;
  }
  MutexLock lock(&state_mutex_);
  return static_cast<int64_t>(dispatcher_->open_connections());
}

std::string FrontEnd::DescribeNodesJson() const {
  MutexLock lock(&state_mutex_);
  const int64_t now = NowMs();
  std::ostringstream out;
  out << "{\"policy\":\"" << dispatcher_->policy().display_name() << "\",\"policy_key\":\""
      << dispatcher_->policy().name() << "\",\"mechanism\":\""
      << MechanismName(config_.mechanism) << "\",\"active_nodes\":"
      << dispatcher_->active_node_count()
      << ",\"replay_enabled\":" << (ReplayEligible() ? "true" : "false")
      << ",\"replays_total\":" << counters_.replays.load(std::memory_order_relaxed)
      << ",\"replay_giveups_total\":"
      << counters_.replay_giveups.load(std::memory_order_relaxed)
      << ",\"journaled_connections\":" << journal_.tracked_connections()
      << ",\"journal_overflows\":" << journal_.overflows() << ",\"nodes\":[";
  for (NodeId node = 0; node < dispatcher_->num_node_slots(); ++node) {
    if (node > 0) {
      out << ",";
    }
    const NodeState state = dispatcher_->node_state(node);
    out << "{\"id\":" << node << ",\"state\":\"" << NodeStateName(state) << "\"";
    out << ",\"load\":" << dispatcher_->NodeLoad(node);
    out << ",\"weight\":" << dispatcher_->NodeWeight(node);
    out << ",\"normalized_load\":" << dispatcher_->NormalizedNodeLoad(node);
    out << ",\"vcache_bytes\":" << dispatcher_->VirtualCacheBytes(node);
    if (static_cast<size_t>(node) < nodes_.size()) {
      const NodeLink& link = nodes_[static_cast<size_t>(node)];
      out << ",\"connections\":" << link.reported_conns;
      out << ",\"heartbeat_seq\":" << link.heartbeat_seq;
      // -1 until the first real heartbeat arrives (a joined-but-silent node
      // must not report a bogus age) and for dead nodes.
      out << ",\"heartbeat_age_ms\":"
          << (state == NodeState::kDead || !link.heartbeat_seen
                  ? -1
                  : now - link.last_heartbeat_ms);
      // 0 = never failed; otherwise the (monotone) epoch stamped when this
      // node's death was detected and its orphans were replayed or shed.
      out << ",\"failure_epoch\":" << link.failure_epoch;
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

void FrontEnd::ConnectBackends(const std::vector<uint16_t>& backend_http_ports) {
  LARD_CHECK(backend_http_ports.size() >= static_cast<size_t>(config_.num_nodes));
  // Each shard keeps its own persistent back-end connections: LateralClient
  // is single-loop, and relay responses must complete on the loop the client
  // connection is pinned to.
  for (auto& shard_ptr : shards_) {
    LoopShard* shard = shard_ptr.get();
    loops_->RunOn(shard->index,
                  alive_.Guard([this, shard, ports = backend_http_ports]() {
                    shard->loop->AssertInLoopThread();
                    shard->relays.clear();
                    for (const uint16_t http_port : ports) {
                      shard->relays.push_back(std::make_unique<LateralClient>(
                          shard->loop, http_port, config_.lateral_timeout_ms));
                    }
                  }));
  }
}

void FrontEnd::OnAccept(LoopShard* shard, uint32_t) {
  shard->loop->AssertInLoopThread();
  while (true) {
    const int fd = ::accept4(shard->listener.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      if (errno == EINTR) {
        continue;
      }
      LARD_LOG(ERROR) << "front-end accept: " << std::strerror(errno);
      return;
    }
    (void)SetTcpNoDelay(fd);
    UniqueFd client(fd);

    if (fd_handoff_accept_) {
      // Fallback accept path (loop 0 only): round-robin the fresh fd across
      // the shards; the owning loop adopts it and pins every callback there.
      LoopShard* target = shards_[next_accept_shard_++ % shards_.size()].get();
      if (target == shard) {
        AdoptClientFd(shard, std::move(client));
      } else {
        auto boxed = std::make_shared<UniqueFd>(std::move(client));
        target->loop->Post(alive_.Guard([this, target, boxed]() {
          AdoptClientFd(target, std::move(*boxed));
        }));
      }
      continue;
    }
    AdoptClientFd(shard, std::move(client));
  }
}

void FrontEnd::AdoptClientFd(LoopShard* shard, UniqueFd fd) {
  shard->loop->AssertInLoopThread();
  if (!fd.valid()) {
    return;  // fallback post raced a shutdown; nothing to adopt
  }
  bool shed = false;
  {
    MutexLock lock(&state_mutex_);
    shed = dispatcher_->active_node_count() == 0;
  }
  if (shed) {
    // Every back-end drained or dead: shed load at the door. The write is
    // best-effort on a fresh socket (buffer empty, nothing to flush).
    (void)!::send(fd.get(), kUnavailableReply, sizeof(kUnavailableReply) - 1, MSG_NOSIGNAL);
    counters_.rejected_no_backend.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
  if (metric_connections_ != nullptr) {
    metric_connections_->Increment();
  }
  if (metric_fe_connections_ != nullptr) {
    metric_fe_connections_->Increment();
  }

  auto conn = std::make_unique<FeConn>();
  FeConn* raw = conn.get();
  raw->id = ++shard->next_conn_id;
  raw->shard = shard;
  const int raw_fd = fd.get();
  raw->conn = std::make_unique<Connection>(shard->loop, std::move(fd));
  // Callbacks are pinned: they resolve the connection through the owning
  // shard's table, which only the shard's loop thread touches. The loop-id
  // check is the pinning invariant the churn tests assert on.
  raw->conn->set_on_data([this, shard, id = raw->id](std::string_view data) {
    if (!shard->loop->IsInLoopThread()) {
      pinning_violations_.fetch_add(1, std::memory_order_relaxed);
    }
    auto it = shard->conns.find(id);
    if (it != shard->conns.end()) {
      OnClientData(it->second.get(), data);
    }
  });
  raw->conn->set_on_close([this, shard, id = raw->id]() {
    if (!shard->loop->IsInLoopThread()) {
      pinning_violations_.fetch_add(1, std::memory_order_relaxed);
    }
    auto it = shard->conns.find(id);
    if (it != shard->conns.end()) {
      OnClientClosed(it->second.get());
    }
  });
  raw->conn->Start();
  RecordSpan(tracer_, shard->trace_ring, raw->id, 0, SpanKind::kAccept,
             static_cast<int32_t>(config_.fe_id), TraceNowUs(), 0, "fd=%d", raw_fd);
  shard->conns.emplace(raw->id, std::move(conn));
  conns_fe_owned_.fetch_add(1, std::memory_order_relaxed);
  ArmIdleTimer(raw);

  if (config_.mechanism == Mechanism::kRelayingFrontEnd) {
    raw->in_dispatcher = true;
    MutexLock lock(&state_mutex_);
    live_in_dispatcher_.insert(raw->id);
    dispatcher_->OnConnectionOpen(raw->id);
  }
}

void FrontEnd::OnClientData(FeConn* conn, std::string_view data) {
  conn->shard->loop->AssertInLoopThread();
  if (conn->closed) {
    return;
  }
  TouchIdleTimer(conn);
  conn->raw_bytes.append(data.data(), data.size());
  std::vector<HttpRequest> requests;
  if (conn->parser.Feed(data, &requests) == RequestParser::State::kError) {
    conn->conn->Write("HTTP/1.0 400 Bad Request\r\nContent-Length: 0\r\n\r\n");
    conn->conn->CloseAfterFlush();
    DestroyConn(conn);
    return;
  }
  if (requests.empty()) {
    return;
  }
  if (config_.mechanism == Mechanism::kRelayingFrontEnd) {
    RelayFlow(conn, std::move(requests));
  } else {
    HandoffFlow(conn, std::move(requests));
  }
}

std::vector<TargetId> FrontEnd::PathsToTargets(const std::vector<std::string>& paths) const {
  std::vector<TargetId> targets;
  targets.reserve(paths.size());
  for (const auto& path : paths) {
    targets.push_back(catalog_->Find(path));
  }
  return targets;
}

RequestDirective FrontEnd::DirectiveFor(const std::string& path,
                                        const Assignment& assignment) const {
  RequestDirective directive;
  directive.cache_after_miss = assignment.cache_after_miss;
  if (assignment.action == AssignmentAction::kForward) {
    directive.action = DirectiveAction::kLateral;
    directive.path = TagPathForNode(path, assignment.node);
  } else if (assignment.action == AssignmentAction::kMigrate) {
    directive.action = DirectiveAction::kMigrate;
    directive.node = assignment.node;
    directive.path = path;
  } else {
    directive.path = path;
  }
  return directive;
}

void FrontEnd::HandoffFlow(FeConn* conn, std::vector<HttpRequest> requests) {
  conn->shard->loop->AssertInLoopThread();
  // Defensive: a first batch with zero complete requests (slow or garbage
  // client) must get a 400 and a close, never reach the dispatcher's
  // non-empty-batch invariants and abort the whole front-end.
  if (requests.empty()) {
    conn->conn->Write("HTTP/1.0 400 Bad Request\r\nContent-Length: 0\r\n\r\n");
    conn->conn->CloseAfterFlush();
    DestroyConn(conn);
    return;
  }

  // The first batch: every complete request that arrived before we decided.
  std::vector<std::string> paths;
  paths.reserve(requests.size());
  for (const auto& request : requests) {
    paths.push_back(request.path);
  }

  // Sampling verdict once per connection; the detail strings (notably the
  // load snapshot) are only built for sampled traces.
  const bool traced = tracer_ != nullptr && tracer_->Sampled(conn->id);
  if (traced) {
    RecordSpan(tracer_, conn->shard->trace_ring, conn->id, 1, SpanKind::kParse,
               static_cast<int32_t>(config_.fe_id), TraceNowUs(), 0, "reqs=%zu bytes=%zu",
               requests.size(), conn->raw_bytes.size());
  }

  // One lock block for the whole routing decision: the no-capacity check and
  // the batch must see the same membership (a node death between them would
  // feed OnBatch an empty pick set and abort the pick loops).
  PendingHandoff pending;
  bool shed = false;
  {
    MutexLock lock(&state_mutex_);
    if (dispatcher_->active_node_count() == 0) {
      // The whole membership can vanish between accept and first data (e.g.
      // the last back-end was just auto-removed); shed instead of crashing.
      shed = true;
    } else {
      dispatcher_->OnConnectionOpen(conn->id);
      live_in_dispatcher_.insert(conn->id);
      const std::vector<TargetId> targets = PathsToTargets(paths);
      const int64_t policy_start_us = traced ? TraceNowUs() : 0;
      const std::vector<Assignment> assignments = dispatcher_->OnBatch(conn->id, targets);
      if (traced) {
        const std::string policy_key = dispatcher_->policy().name();
        RecordSpan(tracer_, conn->shard->trace_ring, conn->id, 2, SpanKind::kPolicy,
                   assignments.empty() ? -1 : assignments[0].node, policy_start_us,
                   TraceNowUs() - policy_start_us, "policy=%s loads=%s", policy_key.c_str(),
                   dispatcher_->DescribeLoads().c_str());
      }
      RecordFetchHints(targets, assignments);
      if (assignments.empty()) {
        // Defensive only (OnBatch returns one assignment per request): if the
        // dispatcher ever returns nothing, shed like the other no-capacity
        // paths instead of aborting the front-end.
        live_in_dispatcher_.erase(conn->id);
        dispatcher_->OnConnectionClose(conn->id);
        shed = true;
      } else {
        LARD_CHECK(assignments[0].action == AssignmentAction::kHandoff);
        pending.node = assignments[0].node;
        pending.msg.autonomous = AutonomousHandoffs();
        pending.msg.directives.reserve(assignments.size());
        for (size_t i = 0; i < assignments.size(); ++i) {
          pending.msg.directives.push_back(DirectiveFor(paths[i], assignments[i]));
        }
      }
    }
  }
  if (shed) {
    conn->conn->Write(kUnavailableReply);
    conn->conn->CloseAfterFlush();
    counters_.rejected_no_backend.fetch_add(1, std::memory_order_relaxed);
    DestroyConn(conn);
    return;
  }

  pending.msg.conn_id = conn->id;
  pending.msg.replay_protected = ReplayEligible();
  // Ship the whole byte stream we saw; the back-end re-parses it and pairs
  // requests with our directives 1:1 (the paper's "copy of request packets to
  // the dispatcher" in reverse).
  pending.msg.unparsed_input = std::move(conn->raw_bytes);
  pending.traced = traced;
  pending.trace_ring = conn->shard->trace_ring;
  pending.request_count = requests.size();

  Connection::Detached detached = conn->conn->Detach();
  if (pending.msg.replay_protected) {
    // Retain a dup of the client socket: if the handling node later dies
    // without handing the connection back, this is the handle that lets a
    // surviving node continue the very same TCP connection. The journal's
    // first entries are the batch we parsed here. The dup and the entry
    // construction happen here on the owning loop; the journal itself is
    // loop-0 state and is written in CompleteHandoff.
    pending.retained_fd = UniqueFd(::fcntl(detached.fd.get(), F_DUPFD_CLOEXEC, 3));
    if (pending.retained_fd.valid()) {
      pending.journal_entries.reserve(requests.size());
      for (const HttpRequest& request : requests) {
        ReplayJournal::Entry entry;
        entry.bytes = request.Serialize();
        entry.method = request.method;
        entry.path = request.path;
        entry.idempotent = IsIdempotent(request.method);
        pending.journal_entries.push_back(std::move(entry));
      }
      // The unparsed suffix of batch 1 (a request still incomplete) ships in
      // the handoff and must survive a crash of the adopting node too.
      pending.partial_tail = conn->parser.buffered();
    }
  }
  pending.client_fd = std::move(detached.fd);

  // Dispatcher state for this connection now lives on; our socket plumbing
  // does not. (Deferred: we are inside this Connection's on_data callback.)
  // Idleness is the adopting back-end's concern from here (its idle_close_ms
  // sweep), so the shard-side deadline stands down.
  if (conn->idle_timer != 0) {
    conn->shard->loop->CancelTimer(conn->idle_timer);
    conn->idle_timer = 0;
  }
  conn->closed = true;
  conns_fe_owned_.fetch_sub(1, std::memory_order_relaxed);
  LoopShard* shard = conn->shard;
  shard->loop->Post(alive_.Guard([shard, id = conn->id]() { shard->conns.erase(id); }));

  // The loop-0-owned half: journal writes and the control-session send.
  if (loop_->IsInLoopThread()) {
    CompleteHandoff(std::move(pending));
  } else {
    auto boxed = std::make_shared<PendingHandoff>(std::move(pending));
    loop_->Post(alive_.Guard([this, boxed]() { CompleteHandoff(std::move(*boxed)); }));
  }
}

void FrontEnd::CompleteHandoff(PendingHandoff pending) {
  loop_->AssertInLoopThread();  // journal_ and nodes_ are loop-0 confined
  if (!NodeLive(pending.node)) {
    // The shard's pick raced a node death loop 0 processed first. Unwind the
    // dispatcher state and shed with a best-effort 503 on the raw socket —
    // nothing was ever written to this client, so the payload is clean.
    {
      MutexLock lock(&state_mutex_);
      if (live_in_dispatcher_.erase(pending.msg.conn_id) > 0) {
        dispatcher_->OnConnectionClose(pending.msg.conn_id);
      }
    }
    if (pending.client_fd.valid()) {
      (void)!::send(pending.client_fd.get(), kUnavailableReply, sizeof(kUnavailableReply) - 1,
                    MSG_NOSIGNAL);
    }
    counters_.rejected_no_backend.fetch_add(1, std::memory_order_relaxed);
    return;  // fds RAII-close
  }

  if (pending.msg.replay_protected && pending.retained_fd.valid()) {
    const ConnId conn = pending.msg.conn_id;
    journal_.Track(conn, std::move(pending.retained_fd));
    for (ReplayJournal::Entry& entry : pending.journal_entries) {
      journal_.Append(conn, std::move(entry));
    }
    journal_.SetPartialTail(conn, std::move(pending.partial_tail));
  }

  NodeLink& link = nodes_[static_cast<size_t>(pending.node)];
  link.control->SendWithFd(static_cast<uint8_t>(ControlMsg::kHandoff),
                           EncodeHandoff(pending.msg), std::move(pending.client_fd));
  if (pending.traced) {
    RecordSpan(tracer_, pending.trace_ring, pending.msg.conn_id, 3, SpanKind::kHandoff,
               pending.node, TraceNowUs(), 0, "reqs=%zu journal=%d", pending.request_count,
               pending.msg.replay_protected ? 1 : 0);
  }
  counters_.handoffs.fetch_add(1, std::memory_order_relaxed);
  if (link.handoff_counter != nullptr) {
    link.handoff_counter->Increment();
  }
  if (metric_fe_handoffs_ != nullptr) {
    metric_fe_handoffs_->Increment();
  }
}

void FrontEnd::RelayFlow(FeConn* conn, std::vector<HttpRequest> requests) {
  conn->shard->loop->AssertInLoopThread();
  bool shed = false;
  {
    MutexLock lock(&state_mutex_);
    if (dispatcher_->active_node_count() == 0) {
      shed = true;
    } else {
      std::vector<std::string> paths;
      paths.reserve(requests.size());
      for (const auto& request : requests) {
        paths.push_back(request.path);
      }
      const std::vector<Assignment> assignments =
          dispatcher_->OnBatch(conn->id, PathsToTargets(paths));
      if (!assignments.empty() && conn->relay_queue == nullptr) {
        conn->relay_queue = std::make_unique<std::deque<std::pair<HttpRequest, NodeId>>>();
      }
      for (size_t i = 0; i < assignments.size(); ++i) {
        LARD_CHECK(assignments[i].action == AssignmentAction::kRelay);
        conn->relay_queue->emplace_back(std::move(requests[i]), assignments[i].node);
      }
    }
  }
  if (shed) {
    conn->conn->Write(kUnavailableReply);
    conn->conn->CloseAfterFlush();
    counters_.rejected_no_backend.fetch_add(1, std::memory_order_relaxed);
    DestroyConn(conn);
    return;
  }
  ProcessNextRelay(conn->shard, conn->id);
}

void FrontEnd::ProcessNextRelay(LoopShard* shard, ConnId id) {
  shard->loop->AssertInLoopThread();
  auto it = shard->conns.find(id);
  if (it == shard->conns.end()) {
    return;
  }
  FeConn* conn = it->second.get();
  const bool queue_empty = conn->relay_queue == nullptr || conn->relay_queue->empty();
  if (conn->serving || conn->closed || queue_empty) {
    if (!conn->serving && !conn->closed && queue_empty) {
      MutexLock lock(&state_mutex_);
      if (live_in_dispatcher_.count(id) != 0) {
        dispatcher_->OnConnectionIdle(id);
      }
    }
    return;
  }
  auto [request, node] = std::move(conn->relay_queue->front());
  conn->relay_queue->pop_front();
  conn->serving = true;
  counters_.relayed_requests.fetch_add(1, std::memory_order_relaxed);

  LARD_CHECK(!shard->relays.empty()) << "relay mode requires ConnectBackends()";
  LARD_CHECK(static_cast<size_t>(node) < shard->relays.size() &&
             shard->relays[static_cast<size_t>(node)] != nullptr)
      << "no relay route to node " << node;
  shard->relays[static_cast<size_t>(node)]->Fetch(
      request.path, [this, shard, id, request](int status, std::string body) {
        if (!shard->loop->IsInLoopThread()) {
          pinning_violations_.fetch_add(1, std::memory_order_relaxed);
        }
        auto it = shard->conns.find(id);
        if (it == shard->conns.end()) {
          return;
        }
        FeConn* conn = it->second.get();
        if (conn->closed || !conn->conn->open()) {
          return;
        }
        HttpResponse response;
        response.version = request.version;
        response.status = status == 0 ? 503 : status;
        response.reason = ReasonPhrase(response.status);
        response.body = std::move(body);
        const bool keep_alive = request.KeepAlive();
        if (!keep_alive) {
          response.headers.Add("Connection", "close");
        }
        conn->conn->Write(response.Serialize());
        conn->serving = false;
        TouchIdleTimer(conn);  // bytes out: the keep-alive window restarts
        if (!keep_alive) {
          conn->conn->CloseAfterFlush();
          DestroyConn(conn);
          return;
        }
        ProcessNextRelay(shard, id);
      });
}

void FrontEnd::OnClientClosed(FeConn* conn) { DestroyConn(conn); }

void FrontEnd::DestroyConn(FeConn* conn) {
  conn->shard->loop->AssertInLoopThread();
  if (conn->closed) {
    return;
  }
  conn->closed = true;
  conns_fe_owned_.fetch_sub(1, std::memory_order_relaxed);
  if (conn->idle_timer != 0) {
    conn->shard->loop->CancelTimer(conn->idle_timer);
    conn->idle_timer = 0;
  }
  if (conn->in_dispatcher) {
    MutexLock lock(&state_mutex_);
    if (live_in_dispatcher_.erase(conn->id) > 0) {
      dispatcher_->OnConnectionClose(conn->id);
    }
  }
  LoopShard* shard = conn->shard;
  shard->loop->Post(alive_.Guard([shard, id = conn->id]() { shard->conns.erase(id); }));
}

void FrontEnd::ArmIdleTimer(FeConn* conn) {
  conn->shard->loop->AssertInLoopThread();
  const int64_t timeout = idle_timeout_ms();
  if (timeout <= 0) {
    return;  // reaper disabled
  }
  conn->last_activity_ms = NowMs();
  LoopShard* shard = conn->shard;
  conn->idle_timer = shard->loop->ScheduleAfterMs(
      timeout, alive_.Guard([this, shard, id = conn->id]() { OnIdleDeadline(shard, id); }));
}

void FrontEnd::TouchIdleTimer(FeConn* conn) {
  conn->last_activity_ms = NowMs();
  const int64_t timeout = idle_timeout_ms();
  if (timeout <= 0) {
    return;  // a still-armed timer no-ops at its deadline
  }
  if (conn->idle_timer != 0) {
    // O(1) when the timer is wheel-resident; a heap-resident deadline keeps
    // its slot and OnIdleDeadline re-checks last_activity_ms instead.
    (void)conn->shard->loop->RearmTimerMs(conn->idle_timer, timeout);
    return;
  }
  ArmIdleTimer(conn);  // reaper was off (or the timer already fired)
}

void FrontEnd::OnIdleDeadline(LoopShard* shard, ConnId id) {
  shard->loop->AssertInLoopThread();
  auto it = shard->conns.find(id);
  if (it == shard->conns.end()) {
    return;
  }
  FeConn* conn = it->second.get();
  conn->idle_timer = 0;  // this firing consumed the id
  if (conn->closed) {
    return;
  }
  const int64_t timeout = idle_timeout_ms();
  if (timeout <= 0) {
    return;  // reaping turned off while armed
  }
  const int64_t idle_for = NowMs() - conn->last_activity_ms;
  const int64_t remaining = conn->serving ? timeout : timeout - idle_for;
  if (remaining > 0) {
    // Activity since the arm (a heap-resident timer skips the O(1) rearm),
    // or a relayed response still in flight: push the deadline out.
    conn->idle_timer = shard->loop->ScheduleAfterMs(
        remaining, alive_.Guard([this, shard, id]() { OnIdleDeadline(shard, id); }));
    return;
  }
  counters_.idle_closes.fetch_add(1, std::memory_order_relaxed);
  if (metric_idle_closes_ != nullptr) {
    metric_idle_closes_->Increment();
  }
  RecordSpan(tracer_, shard->trace_ring, id, 8, SpanKind::kClose,
             static_cast<int32_t>(config_.fe_id), TraceNowUs(), 0, "idle after=%lldms",
             static_cast<long long>(idle_for));
  conn->conn->CloseAfterFlush();
  DestroyConn(conn);
}

void FrontEnd::RunOnLoop0(std::function<void()> fn) {
  if (loop_->IsInLoopThread()) {
    fn();
  } else {
    loop_->Post(std::move(fn));
  }
}

void FrontEnd::OnControlMessage(NodeId node, uint8_t type, std::string payload, UniqueFd fd) {
  loop_->AssertInLoopThread();  // nodes_, journal_, retire timers: loop 0
  MutexLock lock(&state_mutex_);
  NodeLink& link = nodes_[static_cast<size_t>(node)];
  // Any control-session traffic proves the node alive.
  link.last_heartbeat_ms = NowMs();
  switch (static_cast<ControlMsg>(type)) {
    case ControlMsg::kHandback: {
      // A back-end flushed and detached the connection. Two flavours:
      //   * migration (multiple handoff): relay to the named target as a
      //     fresh non-autonomous handoff carrying the unserved replay;
      //   * giveback (target kInvalidNode, or the named target died in
      //     flight): ask the dispatcher to *reassign* the connection and
      //     re-handoff it — the drain/failure reverse-handoff path.
      HandbackMsg msg;
      if (!DecodeHandback(payload, &msg) || !fd.valid() ||
          msg.target_node >= dispatcher_->num_node_slots() ||
          (msg.target_node < 0 && msg.target_node != kInvalidNode)) {
        LARD_LOG(ERROR) << "front-end: bad handback from node " << node;
        return;
      }
      bool resurrected = false;
      if (live_in_dispatcher_.count(msg.conn_id) == 0) {
        if (dispatcher_->HandlingNode(msg.conn_id) != kInvalidNode) {
          journal_.Drop(msg.conn_id);
          return;  // connection closed in flight; drop the fd (RAII closes it)
        }
        // Failure re-handoff: the dispatcher orphaned this connection when
        // its handling (or migration-target) node was removed, but the
        // socket survived the trip back. Resurrect it as a fresh dispatcher
        // connection and reassign instead of dropping the client.
        dispatcher_->OnConnectionOpen(msg.conn_id);
        live_in_dispatcher_.insert(msg.conn_id);
        resurrected = true;
      }
      // The connection changes nodes with everything flushed: the journal
      // restarts from exactly the requests the handback replays.
      RebuildJournalFromHandback(msg.conn_id, msg);
      if (!resurrected && msg.target_node != kInvalidNode && NodeLive(msg.target_node)) {
        HandoffMsg handoff;
        handoff.conn_id = msg.conn_id;
        handoff.autonomous = false;
        handoff.replay_protected = journal_.Tracks(msg.conn_id);
        handoff.directives = std::move(msg.directives);
        handoff.unparsed_input = std::move(msg.replay_input);
        nodes_[static_cast<size_t>(msg.target_node)].control->SendWithFd(
            static_cast<uint8_t>(ControlMsg::kHandoff), EncodeHandoff(handoff), std::move(fd));
        counters_.migrations.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      RehandoffConnection(node, std::move(msg), std::move(fd));
      return;
    }
    case ControlMsg::kReplayAck: {
      ReplayAckMsg msg;
      if (!DecodeReplayAck(payload, &msg)) {
        LARD_LOG(ERROR) << "front-end: bad replay ack from node " << node;
        return;
      }
      journal_.Ack(msg.conn_id, msg.completed, msg.partial_bytes);
      return;
    }
    case ControlMsg::kJournalAppend: {
      JournalAppendMsg msg;
      if (!DecodeJournalAppend(payload, &msg)) {
        LARD_LOG(ERROR) << "front-end: bad journal append from node " << node;
        return;
      }
      RecordSpan(tracer_, trace_ring_, msg.conn_id, 5, SpanKind::kJournal, node, TraceNowUs(), 0,
                 "%s %s", msg.method.c_str(), msg.path.c_str());
      ReplayJournal::Entry entry;
      entry.bytes = std::move(msg.request_bytes);
      entry.idempotent = IsIdempotent(msg.method);
      entry.method = std::move(msg.method);
      entry.path = std::move(msg.path);
      journal_.Append(msg.conn_id, std::move(entry));
      return;
    }
    case ControlMsg::kJournalTail: {
      JournalTailMsg msg;
      if (!DecodeJournalTail(payload, &msg)) {
        LARD_LOG(ERROR) << "front-end: bad journal tail from node " << node;
        return;
      }
      journal_.SetPartialTail(msg.conn_id, std::move(msg.buffered));
      return;
    }
    case ControlMsg::kConsult: {
      ConsultMsg msg;
      if (!DecodeConsult(payload, &msg)) {
        LARD_LOG(ERROR) << "front-end: bad consult from node " << node;
        return;
      }
      HandleConsult(node, msg);
      return;
    }
    case ControlMsg::kIdle: {
      uint64_t conn_id = 0;
      if (DecodeU64(payload, &conn_id) && live_in_dispatcher_.count(conn_id) != 0) {
        dispatcher_->OnConnectionIdle(conn_id);
      }
      return;
    }
    case ControlMsg::kConnClosed: {
      uint64_t conn_id = 0;
      if (DecodeU64(payload, &conn_id)) {
        if (live_in_dispatcher_.erase(conn_id) > 0) {
          dispatcher_->OnConnectionClose(conn_id);
        }
        // Release the retained dup: the TCP connection must actually close
        // (FIN) once the back-end lets go.
        journal_.Drop(conn_id);
      }
      if (retiring_.count(node) != 0) {
        // Deferred: finalizing tears down the channel we are called from.
        loop_->Post(alive_.Guard([this, node]() {
          MutexLock relock(&state_mutex_);
          MaybeFinalizeRetire(node);
        }));
      }
      return;
    }
    case ControlMsg::kDiskReport: {
      uint32_t queue_length = 0;
      if (DecodeU32(payload, &queue_length)) {
        disk_table_->Update(node, static_cast<int>(queue_length));
      }
      return;
    }
    case ControlMsg::kHeartbeat: {
      HeartbeatMsg msg;
      if (!DecodeHeartbeat(payload, &msg)) {
        LARD_LOG(ERROR) << "front-end: bad heartbeat from node " << node;
        return;
      }
      if (msg.seq < link.heartbeat_seq) {
        LARD_LOG(WARNING) << "front-end: node " << node << " heartbeat sequence went backwards ("
                          << link.heartbeat_seq << " -> " << msg.seq << "), node restarted?";
      }
      link.heartbeat_seq = msg.seq;
      link.heartbeat_seen = true;
      link.reported_conns = msg.active_conns;
      disk_table_->Update(node, static_cast<int>(msg.disk_queue_len));
      counters_.heartbeats.fetch_add(1, std::memory_order_relaxed);
      if (metric_heartbeats_ != nullptr) {
        metric_heartbeats_->Increment();
      }
      return;
    }
    case ControlMsg::kTelemetry: {
      TelemetryMsg msg;
      if (!DecodeTelemetry(payload, &msg)) {
        LARD_LOG(ERROR) << "front-end: bad telemetry from node " << node;
        return;
      }
      // Each row is the producer's absolute state for one tick (a lost frame
      // only costs staleness), stamped with the *producer's* clock so the
      // mirrored series stays coherent with the back-end's own timeline.
      TimeSeriesStore* store = NodeTelemetry(node);
      std::vector<std::pair<int, double>> values;
      values.reserve(msg.samples.size());
      for (const TelemetrySample& sample : msg.samples) {
        values.emplace_back(store->AddSeries(sample.name), sample.value);
      }
      store->Append(msg.t_ms, values);
      return;
    }
    default:
      LARD_LOG(ERROR) << "front-end: unexpected control message type " << static_cast<int>(type)
                      << " from node " << node;
  }
}

NodeId FrontEnd::PickLiveNode(ConnId conn, const std::vector<TargetId>& pending,
                              Dispatcher::ReassignReason reason) {
  // Ask the dispatcher for a fresh placement. A pick whose control session
  // already died (its deferred removal not yet processed) would be offered
  // again on a plain retry — load affinity and the attempt's own cache
  // seeding keep steering back to it — so process that removal *now* and
  // re-pick; each such round removes a node, which bounds the loop.
  const ConnId outer_placement = placement_in_progress_;
  placement_in_progress_ = conn;
  NodeId target = kInvalidNode;
  const int max_attempts = dispatcher_->num_node_slots();
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const NodeId pick = dispatcher_->ReassignConnection(conn, pending, reason);
    if (pick == kInvalidNode) {
      break;
    }
    if (NodeLive(pick)) {
      target = pick;
      break;
    }
    // Tearing the stale session down here is safe (the caller's own channel,
    // if any, is live — it just delivered a message). The removal orphans
    // the connection we just parked on the dead pick; resurrect it for the
    // next attempt.
    RemoveNodeInternal(pick, "control session lost");
    if (live_in_dispatcher_.count(conn) == 0) {
      dispatcher_->OnConnectionOpen(conn);
      live_in_dispatcher_.insert(conn);
    }
  }
  placement_in_progress_ = outer_placement;
  return target;
}

void FrontEnd::RehandoffConnection(NodeId from_node, HandbackMsg msg, UniqueFd fd) {
  // Seed the new node's virtual cache with the connection's unserved local
  // targets so affinity-aware policies pick a node that will serve them well.
  std::vector<TargetId> pending;
  for (const RequestDirective& directive : msg.directives) {
    if (directive.action == DirectiveAction::kLocal) {
      pending.push_back(catalog_->Find(directive.path));
    }
  }

  const NodeId target =
      PickLiveNode(msg.conn_id, pending, Dispatcher::ReassignReason::kDrain);
  if (target == kInvalidNode) {
    // No assignable node: shed the client with a best-effort 503 on the raw
    // socket instead of a silent reset.
    if (live_in_dispatcher_.erase(msg.conn_id) > 0) {
      dispatcher_->OnConnectionClose(msg.conn_id);
    }
    journal_.Drop(msg.conn_id);
    (void)!::send(fd.get(), kUnavailableReply, sizeof(kUnavailableReply) - 1, MSG_NOSIGNAL);
    counters_.rejected_no_backend.fetch_add(1, std::memory_order_relaxed);
    LARD_LOG(WARNING) << "front-end: no assignable node for given-back connection "
                      << msg.conn_id << ", shedding with 503";
    return;  // fd RAII-closes
  }

  HandoffMsg handoff;
  handoff.conn_id = msg.conn_id;
  handoff.autonomous = AutonomousHandoffs();
  handoff.replay_protected = journal_.Tracks(msg.conn_id);
  handoff.directives = std::move(msg.directives);
  handoff.unparsed_input = std::move(msg.replay_input);
  nodes_[static_cast<size_t>(target)].control->SendWithFd(
      static_cast<uint8_t>(ControlMsg::kHandoff), EncodeHandoff(handoff), std::move(fd));
  RecordSpan(tracer_, trace_ring_, msg.conn_id, 7, SpanKind::kReassign, target, TraceNowUs(), 0,
             "from=%d reason=drain", from_node);
  counters_.rehandoffs.fetch_add(1, std::memory_order_relaxed);
  if (metric_rehandoffs_ != nullptr) {
    metric_rehandoffs_->Increment();
  }
  if (metric_fe_rehandoffs_ != nullptr) {
    metric_fe_rehandoffs_->Increment();
  }
  if (MeshEnabled()) {
    // The reassignment seeded `target`'s virtual cache with the pending
    // targets; tell the peers the same news.
    std::vector<Assignment> seeded(pending.size());
    for (Assignment& assignment : seeded) {
      assignment.node = target;
    }
    RecordFetchHints(pending, seeded);
  }
  if (nodes_[static_cast<size_t>(target)].handoff_counter != nullptr) {
    nodes_[static_cast<size_t>(target)].handoff_counter->Increment();
  }
  if (retiring_.count(from_node) != 0) {
    // Deferred: finalizing tears down the channel this handback arrived on.
    loop_->Post(alive_.Guard([this, from_node]() {
      MutexLock relock(&state_mutex_);
      MaybeFinalizeRetire(from_node);
    }));
  }
}

bool FrontEnd::IsIdempotent(const std::string& method) const {
  for (const std::string& allowed : config_.idempotent_methods) {
    if (method == allowed) {
      return true;
    }
  }
  return false;
}

void FrontEnd::RebuildJournalFromHandback(ConnId conn, const HandbackMsg& msg) {
  if (!journal_.Tracks(conn)) {
    return;
  }
  RequestParser parser;
  std::vector<HttpRequest> requests;
  if (parser.Feed(msg.replay_input, &requests) == RequestParser::State::kError) {
    journal_.Drop(conn);  // unparseable replay stream: protection off
    return;
  }
  // Only the requests with shipped directives restart the journal here; the
  // consult-dropped remainder re-parses at the new node, which journal-
  // appends them (same order, same channel). The stream's unparsed suffix
  // becomes the partial tail.
  std::vector<ReplayJournal::Entry> entries;
  const size_t count = std::min(requests.size(), msg.directives.size());
  entries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ReplayJournal::Entry entry;
    entry.bytes = requests[i].Serialize();
    entry.method = requests[i].method;
    entry.path = requests[i].path;
    entry.idempotent = IsIdempotent(requests[i].method);
    entries.push_back(std::move(entry));
  }
  // The consult-dropped remainder rides as raw tail bytes until the adopting
  // node's own appends + tail report replace it (same channel, ordered) —
  // otherwise a crash in that window would lose requests only the handback
  // stream ever carried.
  std::string tail;
  for (size_t i = count; i < requests.size(); ++i) {
    tail += requests[i].Serialize();
  }
  tail += parser.buffered();
  journal_.Rebuild(conn, std::move(entries), std::move(tail));
}

void FrontEnd::TryReplayOrphan(ConnId conn, NodeId dead_node) {
  const int64_t replay_start_us = TraceNowUs();
  ReplayJournal::Plan plan = journal_.PlanFor(conn);
  if (!plan.tracked) {
    return;  // unprotected connection (replay off, or the handoff dup failed)
  }
  const int raw_fd = journal_.client_fd(conn);
  const auto give_up = [&](const char* why, int status) {
    RecordSpan(tracer_, trace_ring_, conn, 6, SpanKind::kReassign, dead_node, replay_start_us,
               TraceNowUs() - replay_start_us, "replay-giveup: %s (%d)", why, status);
    counters_.replay_giveups.fetch_add(1, std::memory_order_relaxed);
    if (metric_replay_giveups_ != nullptr) {
      metric_replay_giveups_->Increment();
    }
    // A clean error beats a spliced half-response — but once response bytes
    // already reached the client, injecting anything would corrupt the
    // stream mid-body; closing is the only honest signal then.
    if (!plan.mid_response && raw_fd >= 0) {
      const std::string reply = "HTTP/1.0 " + std::to_string(status) + " " +
                                ReasonPhrase(status) + "\r\nContent-Length: 0\r\n\r\n";
      (void)!::send(raw_fd, reply.data(), reply.size(), MSG_NOSIGNAL);
    }
    if (raw_fd >= 0) {
      // The dead node's fd copies keep the socket open (a crashed process
      // in-process never closes them), so actively FIN the connection —
      // shutdown() acts on the socket, not this dup — instead of leaving
      // the client to its read timeout.
      (void)::shutdown(raw_fd, SHUT_RDWR);
    }
    journal_.Drop(conn);
    LARD_LOG(WARNING) << "front-end: connection " << conn << " lost with node " << dead_node
                      << " (" << why << ")";
  };
  if (raw_fd < 0) {
    give_up("no retained socket", 502);
    return;
  }
  if (!plan.replayable) {
    // Non-idempotent request in the unacknowledged tail (or journal
    // overflow): replaying could repeat a side effect, so fail cleanly.
    give_up("tail not replayable", 502);
    return;
  }

  // Resurrect the connection in the dispatcher and place it on a survivor,
  // seeding the pick's virtual cache with the tail it is about to serve.
  dispatcher_->OnConnectionOpen(conn);
  live_in_dispatcher_.insert(conn);
  std::vector<TargetId> pending;
  pending.reserve(plan.entries.size());
  for (const ReplayJournal::Entry& entry : plan.entries) {
    pending.push_back(catalog_->Find(entry.path));
  }
  const NodeId target = PickLiveNode(conn, pending, Dispatcher::ReassignReason::kFailure);
  if (target == kInvalidNode) {
    if (live_in_dispatcher_.erase(conn) > 0) {
      dispatcher_->OnConnectionClose(conn);
    }
    counters_.rejected_no_backend.fetch_add(1, std::memory_order_relaxed);
    give_up("no assignable node", 503);
    return;
  }

  UniqueFd ship(::fcntl(raw_fd, F_DUPFD_CLOEXEC, 3));
  if (!ship.valid()) {
    if (live_in_dispatcher_.erase(conn) > 0) {
      dispatcher_->OnConnectionClose(conn);
    }
    give_up("dup failed", 502);
    return;
  }

  ReplayMsg msg;
  msg.conn_id = conn;
  msg.origin_node = dead_node;
  msg.splice_offset = plan.splice_offset;
  msg.autonomous = AutonomousHandoffs();
  msg.directives.reserve(plan.entries.size());
  std::string replay_input;
  for (const ReplayJournal::Entry& entry : plan.entries) {
    RequestDirective directive;
    directive.path = entry.path;
    msg.directives.push_back(std::move(directive));
    replay_input += entry.bytes;
  }
  // The dead node's consumed-but-incomplete request prefix: the suffix still
  // in the client socket completes it at the adopting node.
  replay_input += plan.partial_tail;
  msg.replay_input = std::move(replay_input);
  journal_.NoteReplaySent(conn);
  nodes_[static_cast<size_t>(target)].control->SendWithFd(
      static_cast<uint8_t>(ControlMsg::kReplay), EncodeReplay(msg), std::move(ship));
  counters_.replays.fetch_add(1, std::memory_order_relaxed);
  if (metric_replays_ != nullptr) {
    metric_replays_->Increment();
  }
  if (nodes_[static_cast<size_t>(target)].handoff_counter != nullptr) {
    nodes_[static_cast<size_t>(target)].handoff_counter->Increment();
  }
  if (MeshEnabled()) {
    // The reassignment seeded `target`'s virtual cache; tell the peers.
    std::vector<Assignment> seeded(pending.size());
    for (Assignment& assignment : seeded) {
      assignment.node = target;
    }
    RecordFetchHints(pending, seeded);
  }
  RecordSpan(tracer_, trace_ring_, conn, 6, SpanKind::kReplay, target, replay_start_us,
             TraceNowUs() - replay_start_us, "from=%d reqs=%zu splice=%llu", dead_node,
             plan.entries.size(), static_cast<unsigned long long>(plan.splice_offset));
  LARD_LOG(INFO) << "front-end: replayed connection " << conn << " from dead node " << dead_node
                 << " onto node " << target << " (" << plan.entries.size()
                 << " requests + " << plan.partial_tail.size()
                 << " partial-tail bytes, splice offset " << plan.splice_offset << ")";
}

void FrontEnd::HandleConsult(NodeId node, const ConsultMsg& msg) {
  counters_.consults.fetch_add(1, std::memory_order_relaxed);
  disk_table_->Update(node, static_cast<int>(msg.disk_queue_len));
  if (live_in_dispatcher_.count(msg.conn_id) == 0) {
    return;  // connection raced away; the back-end will see kConnClosed state
  }
  const bool traced = tracer_ != nullptr && tracer_->Sampled(msg.conn_id);
  const int64_t consult_start_us = traced ? TraceNowUs() : 0;
  const std::vector<TargetId> targets = PathsToTargets(msg.paths);
  const std::vector<Assignment> assignments = dispatcher_->OnBatch(msg.conn_id, targets);
  if (traced) {
    const std::string policy_key = dispatcher_->policy().name();
    RecordSpan(tracer_, trace_ring_, msg.conn_id, 4, SpanKind::kConsult, node, consult_start_us,
               TraceNowUs() - consult_start_us, "reqs=%zu policy=%s loads=%s", msg.paths.size(),
               policy_key.c_str(), dispatcher_->DescribeLoads().c_str());
  }
  RecordFetchHints(targets, assignments);
  AssignmentsMsg reply;
  reply.conn_id = msg.conn_id;
  reply.directives.reserve(assignments.size());
  for (size_t i = 0; i < assignments.size(); ++i) {
    reply.directives.push_back(DirectiveFor(msg.paths[i], assignments[i]));
  }
  nodes_[static_cast<size_t>(node)].control->Send(static_cast<uint8_t>(ControlMsg::kAssignments),
                                                  EncodeAssignments(reply));
}

}  // namespace lard
