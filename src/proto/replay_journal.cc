#include "src/proto/replay_journal.h"

#include <algorithm>

#include "src/util/logging.h"

namespace lard {

void ReplayJournal::Track(ConnId conn, UniqueFd client_fd) {
  Record record;
  record.fd = std::move(client_fd);
  records_[conn] = std::move(record);
}

void ReplayJournal::Append(ConnId conn, Entry entry) {
  auto it = records_.find(conn);
  if (it == records_.end()) {
    return;
  }
  Record& record = it->second;
  if (record.overflowed) {
    return;
  }
  record.entry_bytes += entry.bytes.size();
  record.entries.push_back(std::move(entry));
  if (record.entries.size() > config_.max_entries_per_conn ||
      record.entry_bytes + record.partial_tail.size() > config_.max_bytes_per_conn) {
    // Protection lost, not the connection: the record (fd + verdict) stays so
    // a crash becomes a counted giveup instead of a silent drop.
    record.overflowed = true;
    record.entries.clear();
    record.entry_bytes = 0;
    record.partial_tail.clear();
    ++overflows_;
  }
}

void ReplayJournal::Ack(ConnId conn, uint64_t completed, uint64_t partial) {
  auto it = records_.find(conn);
  if (it == records_.end()) {
    return;
  }
  Record& record = it->second;
  if (completed < record.node_completed) {
    return;  // stale or reordered report; progress is monotone per node
  }
  uint64_t newly_completed = completed - record.node_completed;
  record.node_completed = completed;
  while (newly_completed > 0 && !record.entries.empty()) {
    record.entry_bytes -= record.entries.front().bytes.size();
    record.entries.pop_front();
    // Once any response completed at this node, the delivered prefix of the
    // (new) head is entirely this node's work.
    record.adoption_splice = 0;
    --newly_completed;
  }
  record.head_partial = partial;
}

void ReplayJournal::SetPartialTail(ConnId conn, std::string buffered) {
  auto it = records_.find(conn);
  if (it == records_.end() || it->second.overflowed) {
    return;
  }
  Record& record = it->second;
  record.partial_tail = std::move(buffered);
  if (record.partial_tail.size() > config_.max_bytes_per_conn) {
    record.overflowed = true;
    record.entries.clear();
    record.entry_bytes = 0;
    record.partial_tail.clear();
    ++overflows_;
  }
}

void ReplayJournal::Rebuild(ConnId conn, std::vector<Entry> entries, std::string partial_tail) {
  auto it = records_.find(conn);
  if (it == records_.end()) {
    return;
  }
  Record& record = it->second;
  if (record.overflowed) {
    return;  // protection stays dropped; re-arming mid-life would miss bytes
  }
  record.entries.clear();
  record.entry_bytes = 0;
  for (Entry& entry : entries) {
    record.entry_bytes += entry.bytes.size();
    record.entries.push_back(std::move(entry));
  }
  record.partial_tail = std::move(partial_tail);
  record.node_completed = 0;
  record.adoption_splice = 0;
  record.head_partial = 0;
  if (record.entries.size() > config_.max_entries_per_conn ||
      record.entry_bytes + record.partial_tail.size() > config_.max_bytes_per_conn) {
    record.overflowed = true;
    record.entries.clear();
    record.entry_bytes = 0;
    record.partial_tail.clear();
    ++overflows_;
  }
}

ReplayJournal::Plan ReplayJournal::PlanFor(ConnId conn) const {
  Plan plan;
  auto it = records_.find(conn);
  if (it == records_.end()) {
    return plan;
  }
  const Record& record = it->second;
  plan.tracked = true;
  plan.splice_offset = record.adoption_splice + record.head_partial;
  plan.mid_response = plan.splice_offset > 0;
  if (record.overflowed) {
    return plan;  // replayable stays false
  }
  // Only *complete* unacknowledged requests gate on idempotency: a partial
  // tail's request was never fully received, so it cannot have executed —
  // re-delivering its prefix repeats nothing.
  plan.replayable = std::all_of(record.entries.begin(), record.entries.end(),
                                [](const Entry& entry) { return entry.idempotent; });
  plan.entries.assign(record.entries.begin(), record.entries.end());
  plan.partial_tail = record.partial_tail;
  return plan;
}

void ReplayJournal::NoteReplaySent(ConnId conn) {
  auto it = records_.find(conn);
  if (it == records_.end()) {
    return;
  }
  Record& record = it->second;
  record.adoption_splice += record.head_partial;
  record.head_partial = 0;
  record.node_completed = 0;
}

int ReplayJournal::client_fd(ConnId conn) const {
  auto it = records_.find(conn);
  return it == records_.end() ? -1 : it->second.fd.get();
}

void ReplayJournal::Drop(ConnId conn) { records_.erase(conn); }

}  // namespace lard
