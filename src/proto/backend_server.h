// Prototype back-end node (Sections 7.1–7.4), in user space:
//
//   * adopts client TCP connections handed off by the front-end (the fd
//     arrives over the control session — our in-kernel-handoff analogue) and
//     serves HTTP/1.0 and persistent HTTP/1.1 with pipelining on them,
//   * for non-autonomous connections, echoes every parsed batch of requests
//     to the front-end dispatcher (the forwarding module's packet-copy path)
//     and acts on the returned *tagged requests*: a "/__be<k>/..." tag makes
//     it fetch the content laterally from node k and relay the response on
//     its client connection (back-end request forwarding),
//   * serves lateral fetches for its peers from its own cache/disk,
//   * reports its disk queue length to the front-end (piggybacked on
//     consults and on a periodic timer), which is the extended-LARD policy's
//     only back-end feedback.
//
// The cache is an LruCache over target ids; a miss passes through the
// DiskGate (simulated disk, DESIGN.md §2). Lateral fetches never populate the
// fetching node's cache — preserving the paper's "NFS client caching
// disabled" semantics so LARD alone controls replication.
//
// Threading: everything runs on the node's EventLoop thread; stats counters
// are atomics readable from outside.
#ifndef SRC_PROTO_BACKEND_SERVER_H_
#define SRC_PROTO_BACKEND_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/cluster_types.h"
#include "src/core/lru_cache.h"
#include "src/http/request_parser.h"
#include "src/net/connection.h"
#include "src/net/event_loop.h"
#include "src/net/framed_channel.h"
#include "src/obs/samplers.h"
#include "src/obs/time_series.h"
#include "src/proto/content_store.h"
#include "src/proto/control_protocol.h"
#include "src/proto/disk_gate.h"
#include "src/proto/lateral_client.h"
#include "src/util/liveness.h"
#include "src/util/metrics.h"
#include "src/util/tracing.h"

namespace lard {

struct BackendConfig {
  NodeId node_id = 0;
  int num_nodes = 1;
  uint64_t cache_bytes = 32ull * 1024 * 1024;
  DiskCostModel disk_costs;
  double disk_time_scale = 1.0;
  // Close a client connection after this much inactivity (the paper's
  // "configurable interval, typically 15 seconds"). <= 0 disables.
  int64_t idle_close_ms = 15000;
  // Liveness heartbeats to the front-end's health tracker. <= 0 disables
  // (the front-end then relies on control-session EOF alone).
  int64_t heartbeat_interval_ms = 500;
  // Per-fetch deadline on lateral (peer) fetches: a killed peer's listener
  // keeps accepting silently until its process dies, and an unbounded wait
  // would wedge the client connection being served. <= 0 disables.
  int64_t lateral_timeout_ms = 2000;
  // Optional shared registry; per-node counters are published under
  // lard_backend_*{node="k"}. Must be thread-safe (MetricsRegistry is).
  MetricsRegistry* metrics = nullptr;
  // Telemetry sampling period: each tick appends one row of windowed values
  // (request rate, hit ratio, latency quantiles, disk queue, loop health) to
  // this node's TimeSeriesStore and ships it to every attached front-end
  // (kTelemetry). <= 0 disables telemetry entirely (no store, no per-request
  // latency timing).
  int64_t telemetry_interval_ms = 0;
  // Optional request tracer: adopt/serve/disk/lateral/flush spans go into
  // the "be<node_id>" ring. The sampling verdict depends only on the conn
  // id, so FE and BE record the same connections.
  Tracer* tracer = nullptr;
};

struct BackendCounters {
  std::atomic<uint64_t> connections_adopted{0};
  std::atomic<uint64_t> replays_adopted{0};  // crash-replay connections (kReplay)
  std::atomic<uint64_t> spliced_responses{0};  // responses emitted with a trimmed prefix
  std::atomic<uint64_t> handbacks{0};  // connections migrated away (multiple handoff)
  std::atomic<uint64_t> drain_handbacks{0};  // connections given back while draining
  std::atomic<uint64_t> requests_served{0};     // responses written to clients
  std::atomic<uint64_t> local_hits{0};
  std::atomic<uint64_t> local_misses{0};
  std::atomic<uint64_t> lateral_out{0};         // fetched from a peer
  std::atomic<uint64_t> lateral_in{0};          // served on behalf of a peer
  std::atomic<uint64_t> bytes_to_clients{0};
  std::atomic<uint64_t> not_found{0};
  std::atomic<uint64_t> idle_closes{0};  // adopted conns reaped by the idle sweep
};

class BackendServer {
 public:
  // `loop` and `store` must outlive the server. The server is constructed on
  // the owner's thread but must be *started* on the loop thread.
  BackendServer(const BackendConfig& config, EventLoop* loop, const ContentStore* store);
  ~BackendServer();

  BackendServer(const BackendServer&) = delete;
  BackendServer& operator=(const BackendServer&) = delete;

  // Loop thread. Attaches front-end 0's control session and opens the
  // lateral listener (port returned via lateral_port()).
  void Start(UniqueFd control_fd);

  // Loop thread. Attaches (or replaces) the control session of front-end
  // `fe_id` — the replicated-FE tier's join path. Every client connection
  // remembers which front-end handed it off, and its consults, idle/close
  // notifications and handbacks travel that front-end's session; heartbeats
  // and disk reports broadcast to every attached front-end. When a session
  // dies (FE leave/crash), that front-end's connections degrade to
  // autonomous local service instead of wedging on unanswerable consults.
  void AttachFrontEnd(int fe_id, UniqueFd control_fd);

  // Loop thread. Connects lateral clients; ports[i] is node i's lateral port
  // (entry for self ignored). Call after every node has started; the list may
  // be longer than the membership this node was configured with (nodes that
  // joined since).
  void ConnectPeers(const std::vector<uint16_t>& ports);

  // Loop thread. Registers (or replaces) the lateral route to one peer — the
  // dynamic-membership path: existing nodes learn a joining node's lateral
  // port without re-wiring the whole mesh.
  void AddPeer(NodeId node, uint16_t port);

  uint16_t lateral_port() const { return lateral_port_; }
  const BackendCounters& counters() const { return counters_; }
  int disk_queue_length() const { return disk_ == nullptr ? 0 : disk_->queue_length(); }
  bool draining() const { return draining_; }
  // This node's telemetry time series (null when telemetry is disabled).
  // The store is internally synchronized: cross-thread reads are safe.
  const TimeSeriesStore* telemetry() const { return telemetry_.get(); }

 private:
  struct ClientConn {
    ConnId id = 0;
    int fe = 0;  // the front-end whose control session handed this conn off
    std::unique_ptr<Connection> conn;
    RequestParser parser;
    bool autonomous = false;
    bool closed = false;
    // Crash-replay journal duty (the front-end journals this connection):
    // report response-flush progress (kReplayAck) and ship requests the
    // front-end never parsed (kJournalAppend).
    bool replay_protected = false;
    // Splice state of a kReplay adoption: suppress the first splice_remaining
    // bytes of the first response, emitted under the dead origin node's
    // Server token so the visible byte stream continues exactly where the
    // crashed node left off.
    uint64_t splice_remaining = 0;
    NodeId splice_origin = kInvalidNode;
    bool splice_pending = false;
    // Response-progress bookkeeping (replay_protected only): cumulative
    // enqueued-byte offset at which each in-flight response ends, compared
    // against Connection::bytes_flushed() to ack completed responses.
    std::deque<uint64_t> response_ends;
    uint64_t enqueued_total = 0;
    uint64_t completed_responses = 0;
    uint64_t last_completed_end = 0;
    uint64_t acked_completed = 0;
    uint64_t acked_partial = 0;
    bool ack_sent = false;
    // Last parser-buffer snapshot shipped to the front-end (kJournalTail);
    // re-sent only on change, so quiescent connections cost nothing. The
    // first parse always reports — the front-end may hold a stale tail from
    // before the adoption (a handback's consult-dropped remainder) that only
    // an explicit (possibly empty) report can clear.
    std::string tail_reported;
    bool tail_ever_reported = false;
    // Requests whose directives arrived with the handoff (batch 1): that many
    // parsed requests must not be re-consulted to the dispatcher.
    size_t preassigned_remaining = 0;
    // Parsed-but-unserved requests, paired FIFO with directives.
    std::deque<HttpRequest> requests;
    std::deque<RequestDirective> directives;
    // Paths parsed but not yet consulted (accumulates while one consult is in
    // flight; flushed as the next batch).
    std::vector<std::string> consult_backlog;
    // Paths of the consult currently in flight, kept until its kAssignments
    // reply lands — if the owning front-end dies first, these requests must
    // still get (local) directives or the FIFO request/directive pairing
    // skews forever.
    std::vector<std::string> consult_inflight;
    bool consult_outstanding = false;
    bool serving = false;       // a response is being produced (serial per conn)
    bool migrating = false;     // hand-back in progress: no consults, no serves
    bool idle_reported = true;  // kIdle sent and nothing new since
    int64_t last_activity_ms = 0;
    // Tracing (verdicts cached at adoption). `traced` = spans recorded;
    // `timed` = per-request timestamps taken (traced, or the slow-request
    // log is armed — which must see every request, not just sampled ones).
    bool traced = false;
    bool timed = false;
    uint32_t trace_seq = 0;        // span ordinal within this connection
    int64_t serve_start_us = 0;    // dequeue time of the request being served
    char serve_cache = '-';        // 'h'it / 'm'iss / 'l'ateral for the kServe span
  };

  struct LateralConn {
    uint64_t id = 0;
    std::unique_ptr<Connection> conn;
    RequestParser parser;
    // Responses must leave in request order even when a cache hit follows a
    // disk miss, so lateral service is serial per connection.
    std::deque<HttpRequest> pending;
    bool serving = false;
  };

  // Control sessions (one per front-end).
  void OnControlMessage(int fe, uint8_t type, std::string payload, UniqueFd fd);
  void AdoptConnection(int fe, HandoffMsg msg, UniqueFd fd);
  // Crash replay (kReplay): adopt a connection whose previous node died,
  // re-serving the journaled tail and splicing the first response.
  void AdoptReplay(int fe, ReplayMsg msg, UniqueFd fd);
  // Shared adoption plumbing for kHandoff and kReplay.
  ClientConn* AdoptCommon(int fe, ConnId conn_id, bool autonomous, bool replay_protected,
                          std::vector<RequestDirective> directives, UniqueFd fd);
  void OnAssignments(const AssignmentsMsg& msg);
  // The channel to front-end `fe`, or nullptr when absent/closed.
  FramedChannel* FeChannel(int fe);
  // Front-end `fe`'s control session died: degrade its connections.
  void OnFrontEndLost(int fe);

  // Client connections.
  void OnClientData(ClientConn* conn, std::string_view data);
  void OnClientClosed(ClientConn* conn);
  void MaybeConsult(ClientConn* conn);
  void ProcessNext(ClientConn* conn);
  // Multiple handoff: flush outstanding responses, then detach the client
  // socket and hand it back to the front-end for migration (Section 7.2's
  // sketched design — "the handoff protocol at the backend can hand back the
  // connection to the frontend, which can further hand it to another
  // backend"; flushing first keeps the response pipeline from draining
  // mid-response).
  void StartHandback(ClientConn* conn);
  void DoHandback(ConnId conn_id);
  // Drain-state giveback: once `conn` is quiescent between batches, flush and
  // hand it back to the front-end with target kInvalidNode — the front-end's
  // dispatcher reassigns it to a surviving node (reverse handoff).
  void MaybeDrainHandback(ClientConn* conn);
  void ServeLocal(ClientConn* conn, const HttpRequest& request, const RequestDirective& directive);
  void ServeLateral(ClientConn* conn, const HttpRequest& request, NodeId peer,
                    const std::string& path);
  void WriteResponse(ClientConn* conn, const HttpRequest& request, int status, std::string body);
  // Replay-protected conns: compare flushed bytes against response
  // boundaries and report fresh progress to the owning front-end's journal.
  void MaybeSendReplayAck(ClientConn* conn);
  void FinishRequest(ClientConn* conn);
  void CloseClient(ClientConn* conn, bool notify_frontend);
  void ReportIdleIfQuiescent(ClientConn* conn);

  // Lateral service.
  void OnLateralAccept(uint32_t events);
  void OnLateralData(uint64_t lateral_id, std::string_view data);
  void ProcessNextLateral(uint64_t lateral_id);
  void DestroyLateralConn(uint64_t lateral_id);

  void Housekeeping();
  void SweepIdleConnections();
  void MaybeSendHeartbeat();
  // One telemetry sampling tick (loop thread, self-rescheduling guarded
  // timer): appends a row to telemetry_ and ships it to every front-end.
  void TelemetryTick();
  int64_t NowMs() const;

  // A lateral route to `node` exists. The mesh (peers_) grows as nodes join,
  // so this — not the join-time num_nodes — is the membership bound.
  bool HasPeer(NodeId node) const {
    return node >= 0 && static_cast<size_t>(node) < peers_.size() &&
           peers_[static_cast<size_t>(node)] != nullptr;
  }

  BackendConfig config_;
  EventLoop* loop_;
  const ContentStore* store_;
  // Guards deferred callbacks (posted erases, the housekeeping timer), which
  // the loop may run after an in-place server teardown. Invalidated first in
  // the destructor.
  LivenessToken alive_;
  bool draining_ = false;

  std::vector<std::unique_ptr<FramedChannel>> controls_;  // index = front-end id
  std::unique_ptr<DiskGate> disk_;
  LruCache cache_;

  UniqueFd lateral_listener_;
  uint16_t lateral_port_ = 0;
  std::vector<std::unique_ptr<LateralClient>> peers_;  // index = NodeId

  std::unordered_map<ConnId, std::unique_ptr<ClientConn>> conns_;
  std::unordered_map<uint64_t, std::unique_ptr<LateralConn>> lateral_conns_;
  uint64_t next_lateral_id_ = 1;

  BackendCounters counters_;

  Tracer* tracer_ = nullptr;
  TraceRing* trace_ring_ = nullptr;

  // Shared-registry instruments (null when config.metrics is null).
  MetricCounter* metric_requests_ = nullptr;
  MetricCounter* metric_hits_ = nullptr;
  MetricCounter* metric_misses_ = nullptr;
  MetricCounter* metric_lateral_ = nullptr;
  MetricCounter* metric_heartbeats_ = nullptr;
  MetricGauge* metric_open_conns_ = nullptr;
  MetricCounter* metric_idle_closes_ = nullptr;
  uint64_t heartbeat_seq_ = 0;
  int64_t last_heartbeat_ms_ = 0;

  // Telemetry (telemetry_interval_ms > 0): the node's series store, the
  // window samplers feeding it, and the shipping state. All loop-confined
  // except telemetry_ itself (internally synchronized for admin reads).
  std::unique_ptr<TimeSeriesStore> telemetry_;
  MetricHistogram* metric_request_us_ = nullptr;  // always-on request latency
  std::vector<std::string> telemetry_names_;      // series index -> name
  std::vector<std::pair<int, double>> telemetry_scratch_;
  CounterRateSampler rate_requests_;
  CounterRateSampler rate_hits_;
  CounterRateSampler rate_misses_;
  CounterRateSampler rate_lateral_;
  HistogramWindowSampler latency_window_;
  HistogramWindowSampler wakeup_window_;
  uint64_t telemetry_seq_ = 0;
  int64_t telemetry_last_ms_ = 0;
};

}  // namespace lard

#endif  // SRC_PROTO_BACKEND_SERVER_H_
