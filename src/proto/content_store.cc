#include "src/proto/content_store.h"

#include "src/util/logging.h"

namespace lard {
namespace {

// 64-byte repeating fill block; offset rotated by a path hash so different
// documents have different bytes.
constexpr char kFill[] =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789+/";

uint64_t PathHash(const std::string& path) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const char c : path) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

ContentStore::ContentStore(const TargetCatalog* catalog) : catalog_(catalog) {
  LARD_CHECK(catalog_ != nullptr);
}

std::string ContentStore::ExpectedBody(const std::string& path, uint64_t size_bytes) {
  std::string body;
  body.reserve(size_bytes);
  std::string header = path + "#" + std::to_string(size_bytes) + "#";
  if (header.size() > size_bytes) {
    header.resize(size_bytes);
  }
  body = header;
  const uint64_t rot = PathHash(path) % 64;
  size_t i = body.size();
  body.resize(size_bytes);
  for (; i < size_bytes; ++i) {
    body[i] = kFill[(i + rot) % 64];
  }
  return body;
}

std::string ContentStore::BodyFor(TargetId target) const {
  const Target& entry = catalog_->Get(target);
  return ExpectedBody(entry.path, entry.size_bytes);
}

}  // namespace lard
