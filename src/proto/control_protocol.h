// Control-session protocol between the prototype front-end and back-ends
// (Section 7.1): the user-space analogue of the paper's handoff-protocol
// control connection. Carries connection handoffs (with the client socket fd
// attached — our TCP handoff), dispatcher consults and tagged-request
// replies, idle/close notifications, and disk-queue-length reports.
#ifndef SRC_PROTO_CONTROL_PROTOCOL_H_
#define SRC_PROTO_CONTROL_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/cluster_types.h"
#include "src/proto/wire.h"

namespace lard {

enum class ControlMsg : uint8_t {
  // FE -> BE. fd attached: the client socket. Payload: HandoffMsg.
  kHandoff = 1,
  // BE -> FE. Payload: ConsultMsg — the next pipelined batch of requests on
  // a handed-off connection (the analogue of the forwarding module's request
  // packet copies reaching the dispatcher).
  kConsult = 2,
  // FE -> BE. Payload: AssignmentsMsg — the dispatcher's tagged requests.
  kAssignments = 3,
  // BE -> FE. Payload: u64 conn_id. All responses flushed; connection idle.
  kIdle = 4,
  // BE -> FE. Payload: u64 conn_id. Client connection closed.
  kConnClosed = 5,
  // BE -> FE. Payload: u32 queue length. Periodic disk report.
  kDiskReport = 6,
  // BE -> FE. fd attached: the client socket, being handed *back*. Payload:
  // HandbackMsg. Two flavours share the message:
  //   * target_node >= 0 — migration to that node (TCP multiple handoff,
  //     Section 7.2's sketched extension); the FE relays it as a kHandoff.
  //   * target_node == kInvalidNode — reverse handoff from a draining or
  //     retiring node: the FE asks the dispatcher to *reassign* the
  //     connection and re-handoffs it to the chosen node.
  kHandback = 7,
  // BE -> FE. Payload: HeartbeatMsg. Periodic liveness + load report; the
  // front-end's health tracker declares a node dead (and auto-removes it
  // from the dispatcher) after a configurable number of missed intervals.
  kHeartbeat = 8,
  // FE -> BE. Payload: u32 flags (reserved, send 0). The node is draining or
  // retiring: give every persistent connection back to the front-end (a
  // kHandback with target_node == kInvalidNode) as soon as it is quiescent
  // between batches, instead of holding it until the client closes.
  kDrain = 9,
  // FE -> BE. Payload: u32 fe_id. First message on a control session from a
  // replicated front-end tier: identifies which front-end the session
  // belongs to (FE join). FE leave is the session's EOF — the back-end then
  // degrades that front-end's connections to autonomous local service.
  kFeHello = 10,
  // FE -> BE. fd attached: a dup of the client socket of a connection whose
  // handling node died *uncooperatively* (no kHandback — crash). Payload:
  // ReplayMsg — the journaled tail of idempotent requests whose responses
  // never fully reached the client, plus the byte offset of the first
  // response already relayed. The adopting node re-serves the tail and
  // splices its first response at that offset so the client sees one
  // uninterrupted P-HTTP stream.
  kReplay = 11,
  // BE -> FE. Payload: ReplayAckMsg. Journal progress: how many responses on
  // a replay-protected connection have fully reached the kernel socket at
  // this node, and how many bytes of the next one have. The front-end trims
  // its journal to the unacknowledged tail.
  kReplayAck = 12,
  // BE -> FE. Payload: JournalAppendMsg. A request parsed at the back-end
  // that the front-end never saw (pipelined after the handoff batch): its
  // serialized bytes join the front-end's replay journal so a later crash
  // can replay it.
  kJournalAppend = 13,
  // BE -> FE. Payload: JournalTailMsg — the back-end parser's current
  // *unparsed* buffer (the prefix of a request still incomplete), sent
  // whenever it changes. Without it, a crash that caught the node mid-read
  // would leave the request's consumed prefix unrecoverable: the surviving
  // node would see only the torn suffix from the socket and 400 the client.
  kJournalTail = 14,
  // BE -> FE. Payload: TelemetryMsg — one periodic telemetry sample row for
  // the cluster time-series store. Mesh-style absolute state (each row
  // carries full current values, not deltas since the last row), so a lost
  // or reordered frame only costs staleness, never drift.
  kTelemetry = 15,
};

// One request directive inside kHandoff / kAssignments.
enum class DirectiveAction : uint8_t {
  // Serve on the node holding the connection (path is the original path).
  kLocal = 0,
  // Back-end forwarding: path carries a "/__be<k>/..." tag; fetch laterally.
  kLateral = 1,
  // Multiple handoff: flush, then hand the connection back to the front-end
  // for migration to `node`; this request is served there.
  kMigrate = 2,
};

struct RequestDirective {
  DirectiveAction action = DirectiveAction::kLocal;
  // Migration target (kMigrate only).
  NodeId node = kInvalidNode;
  // The path the back-end server should act on: the original path for a
  // local serve or migrate, or a tagged path ("/__be<k>/...") instructing a
  // lateral fetch from node k (Section 7.3's URL-prefix tagging).
  std::string path;
  // Extended LARD's caching heuristic: when false, a local disk miss must not
  // populate the cache.
  bool cache_after_miss = true;
};

struct HandoffMsg {
  ConnId conn_id = 0;
  // When true the back-end serves all subsequent requests locally without
  // consulting the dispatcher — the connection-granularity mechanisms (WRR,
  // simple LARD over single handoff).
  bool autonomous = false;
  // Directives for the requests the FE already read before handing off
  // (batch 1: the first request plus any pipelined tail).
  std::vector<RequestDirective> directives;
  // Raw bytes the FE read but did not parse (suffix of a partial request);
  // must be replayed into the back-end's parser before new socket data.
  std::string unparsed_input;
  // The front-end journals this connection for crash replay: the back-end
  // must report response progress (kReplayAck) and ship requests the
  // front-end never parsed (kJournalAppend).
  bool replay_protected = false;
};

struct ConsultMsg {
  ConnId conn_id = 0;
  std::vector<std::string> paths;
  uint32_t disk_queue_len = 0;  // piggybacked feedback
};

struct AssignmentsMsg {
  ConnId conn_id = 0;
  std::vector<RequestDirective> directives;
};

// The hand-back: the connection (fd attached to the frame) plus everything
// the next node needs to continue it seamlessly. target_node names the
// migration destination, or kInvalidNode for a drain/retire giveback where
// the front-end's dispatcher picks the destination (ReassignConnection).
struct HandbackMsg {
  ConnId conn_id = 0;
  NodeId target_node = kInvalidNode;
  // Directives for the replayed requests, in order (the migrating request
  // first, rewritten as kLocal for the target).
  std::vector<RequestDirective> directives;
  // Serialized unserved requests followed by the unparsed input tail.
  std::string replay_input;
};

// Periodic liveness report. Sequence numbers are monotonic per control
// session so the front-end can spot silent restarts; the load fields ride
// along so healthy heartbeats double as feedback (disk queue like
// kDiskReport, plus the node's open client-connection count for /nodes).
struct HeartbeatMsg {
  uint64_t seq = 0;
  uint32_t disk_queue_len = 0;
  uint32_t active_conns = 0;
};

// Crash replay (kReplay): everything the adopting node needs to continue a
// connection whose handling node died without handing it back. The fd rides
// on the frame (a dup the front-end retained at handoff time).
struct ReplayMsg {
  ConnId conn_id = 0;
  // The dead node's identity. The spliced first response must be
  // byte-identical to what the dead node was sending, so the adopting node
  // emits it under this node's Server token.
  NodeId origin_node = kInvalidNode;
  // Bytes of the first replayed request's response that already reached the
  // client; the adopting node suppresses exactly this prefix of its
  // regenerated first response (the splice).
  uint64_t splice_offset = 0;
  // Serve without consulting the dispatcher (mirrors HandoffMsg.autonomous).
  bool autonomous = false;
  // One directive per replayed request, paired FIFO with replay_input.
  std::vector<RequestDirective> directives;
  // The journaled unacknowledged requests, re-serialized in order.
  std::string replay_input;
};

// Journal progress report (kReplayAck). `completed` counts responses fully
// flushed to the kernel socket at the reporting node since it adopted the
// connection; `partial_bytes` is how much of response `completed + 1` has.
struct ReplayAckMsg {
  ConnId conn_id = 0;
  uint64_t completed = 0;
  uint64_t partial_bytes = 0;
};

// Journal append (kJournalAppend): a request the back-end parsed beyond the
// handoff batch, re-serialized so the front-end's journal stays complete.
// Method and path ride along so the front-end applies its idempotency policy
// without re-parsing.
struct JournalAppendMsg {
  ConnId conn_id = 0;
  std::string method;
  std::string path;
  std::string request_bytes;
};

// Parser-buffer snapshot (kJournalTail): replaces the journal's stored
// partial tail for the connection (empty = the buffer drained into a
// complete, separately-appended request).
struct JournalTailMsg {
  ConnId conn_id = 0;
  std::string buffered;
};

// Telemetry sample row (kTelemetry): one sampling tick of a back-end's
// time-series store, shipped to every attached front-end. Values are
// already windowed (rates per second, window quantiles) so the front-end
// mirrors them verbatim; `seq` is monotonic per control session (staleness /
// restart detection) and `t_ms` is the producer's sample timestamp.
struct TelemetrySample {
  std::string name;
  double value = 0.0;
};

struct TelemetryMsg {
  uint64_t seq = 0;
  int64_t t_ms = 0;
  std::vector<TelemetrySample> samples;
};

std::string EncodeTelemetry(const TelemetryMsg& msg);
bool DecodeTelemetry(std::string_view payload, TelemetryMsg* msg);

std::string EncodeHeartbeat(const HeartbeatMsg& msg);
bool DecodeHeartbeat(std::string_view payload, HeartbeatMsg* msg);

std::string EncodeHandoff(const HandoffMsg& msg);
bool DecodeHandoff(std::string_view payload, HandoffMsg* msg);

std::string EncodeReplay(const ReplayMsg& msg);
bool DecodeReplay(std::string_view payload, ReplayMsg* msg);

std::string EncodeReplayAck(const ReplayAckMsg& msg);
bool DecodeReplayAck(std::string_view payload, ReplayAckMsg* msg);

std::string EncodeJournalAppend(const JournalAppendMsg& msg);
bool DecodeJournalAppend(std::string_view payload, JournalAppendMsg* msg);

std::string EncodeJournalTail(const JournalTailMsg& msg);
bool DecodeJournalTail(std::string_view payload, JournalTailMsg* msg);

std::string EncodeHandback(const HandbackMsg& msg);
bool DecodeHandback(std::string_view payload, HandbackMsg* msg);

std::string EncodeConsult(const ConsultMsg& msg);
bool DecodeConsult(std::string_view payload, ConsultMsg* msg);

std::string EncodeAssignments(const AssignmentsMsg& msg);
bool DecodeAssignments(std::string_view payload, AssignmentsMsg* msg);

std::string EncodeU64(uint64_t value);
bool DecodeU64(std::string_view payload, uint64_t* value);

std::string EncodeU32(uint32_t value);
bool DecodeU32(std::string_view payload, uint32_t* value);

}  // namespace lard

#endif  // SRC_PROTO_CONTROL_PROTOCOL_H_
