// Control-session protocol between the prototype front-end and back-ends
// (Section 7.1): the user-space analogue of the paper's handoff-protocol
// control connection. Carries connection handoffs (with the client socket fd
// attached — our TCP handoff), dispatcher consults and tagged-request
// replies, idle/close notifications, and disk-queue-length reports.
#ifndef SRC_PROTO_CONTROL_PROTOCOL_H_
#define SRC_PROTO_CONTROL_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/cluster_types.h"
#include "src/proto/wire.h"

namespace lard {

enum class ControlMsg : uint8_t {
  // FE -> BE. fd attached: the client socket. Payload: HandoffMsg.
  kHandoff = 1,
  // BE -> FE. Payload: ConsultMsg — the next pipelined batch of requests on
  // a handed-off connection (the analogue of the forwarding module's request
  // packet copies reaching the dispatcher).
  kConsult = 2,
  // FE -> BE. Payload: AssignmentsMsg — the dispatcher's tagged requests.
  kAssignments = 3,
  // BE -> FE. Payload: u64 conn_id. All responses flushed; connection idle.
  kIdle = 4,
  // BE -> FE. Payload: u64 conn_id. Client connection closed.
  kConnClosed = 5,
  // BE -> FE. Payload: u32 queue length. Periodic disk report.
  kDiskReport = 6,
  // BE -> FE. fd attached: the client socket, being handed *back*. Payload:
  // HandbackMsg. Two flavours share the message:
  //   * target_node >= 0 — migration to that node (TCP multiple handoff,
  //     Section 7.2's sketched extension); the FE relays it as a kHandoff.
  //   * target_node == kInvalidNode — reverse handoff from a draining or
  //     retiring node: the FE asks the dispatcher to *reassign* the
  //     connection and re-handoffs it to the chosen node.
  kHandback = 7,
  // BE -> FE. Payload: HeartbeatMsg. Periodic liveness + load report; the
  // front-end's health tracker declares a node dead (and auto-removes it
  // from the dispatcher) after a configurable number of missed intervals.
  kHeartbeat = 8,
  // FE -> BE. Payload: u32 flags (reserved, send 0). The node is draining or
  // retiring: give every persistent connection back to the front-end (a
  // kHandback with target_node == kInvalidNode) as soon as it is quiescent
  // between batches, instead of holding it until the client closes.
  kDrain = 9,
  // FE -> BE. Payload: u32 fe_id. First message on a control session from a
  // replicated front-end tier: identifies which front-end the session
  // belongs to (FE join). FE leave is the session's EOF — the back-end then
  // degrades that front-end's connections to autonomous local service.
  kFeHello = 10,
};

// One request directive inside kHandoff / kAssignments.
enum class DirectiveAction : uint8_t {
  // Serve on the node holding the connection (path is the original path).
  kLocal = 0,
  // Back-end forwarding: path carries a "/__be<k>/..." tag; fetch laterally.
  kLateral = 1,
  // Multiple handoff: flush, then hand the connection back to the front-end
  // for migration to `node`; this request is served there.
  kMigrate = 2,
};

struct RequestDirective {
  DirectiveAction action = DirectiveAction::kLocal;
  // Migration target (kMigrate only).
  NodeId node = kInvalidNode;
  // The path the back-end server should act on: the original path for a
  // local serve or migrate, or a tagged path ("/__be<k>/...") instructing a
  // lateral fetch from node k (Section 7.3's URL-prefix tagging).
  std::string path;
  // Extended LARD's caching heuristic: when false, a local disk miss must not
  // populate the cache.
  bool cache_after_miss = true;
};

struct HandoffMsg {
  ConnId conn_id = 0;
  // When true the back-end serves all subsequent requests locally without
  // consulting the dispatcher — the connection-granularity mechanisms (WRR,
  // simple LARD over single handoff).
  bool autonomous = false;
  // Directives for the requests the FE already read before handing off
  // (batch 1: the first request plus any pipelined tail).
  std::vector<RequestDirective> directives;
  // Raw bytes the FE read but did not parse (suffix of a partial request);
  // must be replayed into the back-end's parser before new socket data.
  std::string unparsed_input;
};

struct ConsultMsg {
  ConnId conn_id = 0;
  std::vector<std::string> paths;
  uint32_t disk_queue_len = 0;  // piggybacked feedback
};

struct AssignmentsMsg {
  ConnId conn_id = 0;
  std::vector<RequestDirective> directives;
};

// The hand-back: the connection (fd attached to the frame) plus everything
// the next node needs to continue it seamlessly. target_node names the
// migration destination, or kInvalidNode for a drain/retire giveback where
// the front-end's dispatcher picks the destination (ReassignConnection).
struct HandbackMsg {
  ConnId conn_id = 0;
  NodeId target_node = kInvalidNode;
  // Directives for the replayed requests, in order (the migrating request
  // first, rewritten as kLocal for the target).
  std::vector<RequestDirective> directives;
  // Serialized unserved requests followed by the unparsed input tail.
  std::string replay_input;
};

// Periodic liveness report. Sequence numbers are monotonic per control
// session so the front-end can spot silent restarts; the load fields ride
// along so healthy heartbeats double as feedback (disk queue like
// kDiskReport, plus the node's open client-connection count for /nodes).
struct HeartbeatMsg {
  uint64_t seq = 0;
  uint32_t disk_queue_len = 0;
  uint32_t active_conns = 0;
};

std::string EncodeHeartbeat(const HeartbeatMsg& msg);
bool DecodeHeartbeat(std::string_view payload, HeartbeatMsg* msg);

std::string EncodeHandoff(const HandoffMsg& msg);
bool DecodeHandoff(std::string_view payload, HandoffMsg* msg);

std::string EncodeHandback(const HandbackMsg& msg);
bool DecodeHandback(std::string_view payload, HandbackMsg* msg);

std::string EncodeConsult(const ConsultMsg& msg);
bool DecodeConsult(std::string_view payload, ConsultMsg* msg);

std::string EncodeAssignments(const AssignmentsMsg& msg);
bool DecodeAssignments(std::string_view payload, AssignmentsMsg* msg);

std::string EncodeU64(uint64_t value);
bool DecodeU64(std::string_view payload, uint64_t* value);

std::string EncodeU32(uint32_t value);
bool DecodeU32(std::string_view payload, uint32_t* value);

}  // namespace lard

#endif  // SRC_PROTO_CONTROL_PROTOCOL_H_
