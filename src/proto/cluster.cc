#include "src/proto/cluster.h"

#include <cmath>
#include <cstdlib>
#include <future>
#include <sstream>

#include "src/core/policy.h"
#include "src/net/socket.h"
#include "src/util/logging.h"

namespace lard {
namespace {

// Runs `fn` on the loop's thread and waits for completion. Runs inline when
// already on that thread (admin handlers run on the front-end loop and call
// membership operations that target the same loop).
void RunOnLoop(EventLoop* loop, std::function<void()> fn) {
  if (loop->IsInLoopThread()) {
    fn();
    return;
  }
  std::promise<void> done;
  auto future = done.get_future();
  loop->Post([&fn, &done]() {
    fn();
    done.set_value();
  });
  future.wait();
}

std::string Trim(const std::string& text) {
  const size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) {
    return std::string();
  }
  return text.substr(begin, text.find_last_not_of(" \t\r\n") + 1 - begin);
}

// Strict number parse: the whole (trimmed) string must be one double that
// passes the shared capacity-weight validator (positive and finite — the
// same IsValidCapacityWeight the dispatcher CHECKs and the simulator's
// membership events are screened by). Trailing garbage ("2,5", "2.5x") is
// rejected, not silently truncated.
bool ParsePositiveNumber(const std::string& text, double* value) {
  const std::string trimmed = Trim(text);
  if (trimmed.empty()) {
    return false;
  }
  char* parse_end = nullptr;
  const double parsed = std::strtod(trimmed.c_str(), &parse_end);
  if (parse_end != trimmed.c_str() + trimmed.size() || !IsValidCapacityWeight(parsed)) {
    return false;
  }
  *value = parsed;
  return true;
}

// Parses the optional capacity weight of a POST /nodes/add body. Accepts an
// empty body (weight 1.0), a bare number ("2.5"), a form pair ("weight=2.5")
// or a tiny JSON object ({"weight":2.5}). Returns false on anything else or
// a non-positive/non-finite weight.
bool ParseWeightBody(const std::string& body, double* weight) {
  *weight = 1.0;
  const std::string trimmed = Trim(body);
  if (trimmed.empty()) {
    return true;  // empty body: default weight
  }
  if (trimmed.front() == '{') {
    // {"weight": <number>} and nothing else.
    if (trimmed.back() != '}') {
      return false;
    }
    std::string inner = Trim(trimmed.substr(1, trimmed.size() - 2));
    static constexpr char kKey[] = "\"weight\"";
    if (inner.compare(0, sizeof(kKey) - 1, kKey) != 0) {
      return false;
    }
    inner = Trim(inner.substr(sizeof(kKey) - 1));
    if (inner.empty() || inner.front() != ':') {
      return false;
    }
    return ParsePositiveNumber(inner.substr(1), weight);
  }
  const size_t equals = trimmed.find('=');
  if (equals != std::string::npos) {
    // weight=<number> and nothing else.
    if (Trim(trimmed.substr(0, equals)) != "weight") {
      return false;
    }
    return ParsePositiveNumber(trimmed.substr(equals + 1), weight);
  }
  return ParsePositiveNumber(trimmed, weight);
}

}  // namespace

// One back-end node: loop thread + server. Declaration order matters: the
// loop must outlive the server (whose teardown unregisters fds).
struct Cluster::Node {
  std::unique_ptr<EventLoop> loop;
  std::unique_ptr<BackendServer> server;
  std::thread thread;
  uint16_t lateral_port = 0;
  bool stopped = false;  // loop stopped (removed or killed)
};

Cluster::Cluster(const ClusterConfig& config, const TargetCatalog* catalog)
    : config_(config), store_(catalog) {
  LARD_CHECK(config_.num_nodes > 0);
  LARD_CHECK(config_.num_frontends > 0);
  TracerConfig tracer_config;
  tracer_config.enabled = config_.tracing_enabled;
  tracer_config.sample_every = config_.trace_sample_every;
  tracer_config.ring_capacity = config_.trace_ring_capacity;
  tracer_config.slow_threshold_us = config_.slow_request_threshold_us;
  tracer_ = std::make_unique<Tracer>(tracer_config);
}

Cluster::~Cluster() { Stop(); }

Status Cluster::StartBackend(NodeId node_id, std::vector<UniqueFd>* fe_ends) {
  // One control-session socketpair per front-end replica.
  std::vector<UniqueFd> be_ends;
  fe_ends->clear();
  for (int fe = 0; fe < config_.num_frontends; ++fe) {
    auto pair = UnixPair();
    if (!pair.ok()) {
      return pair.status();
    }
    fe_ends->push_back(std::move(pair.value().first));
    be_ends.push_back(std::move(pair.value().second));
  }

  auto node = std::make_unique<Node>();
  node->loop = std::make_unique<EventLoop>();
  BackendConfig backend_config;
  backend_config.node_id = node_id;
  backend_config.num_nodes = node_id + 1;
  backend_config.cache_bytes = config_.backend_cache_bytes;
  backend_config.disk_costs = config_.disk_costs;
  backend_config.disk_time_scale = config_.disk_time_scale;
  backend_config.idle_close_ms = config_.idle_close_ms;
  backend_config.lateral_timeout_ms = config_.lateral_timeout_ms;
  backend_config.heartbeat_interval_ms = config_.heartbeat_interval_ms;
  backend_config.metrics = &metrics_;
  backend_config.tracer = tracer_.get();
  node->server = std::make_unique<BackendServer>(backend_config, node->loop.get(), &store_);
  if (config_.profile_loops) {
    // Must precede Run(): the loop thread starts just below.
    node->loop->EnableProfiling(&metrics_, "be" + std::to_string(node_id));
  }
  node->thread = std::thread([loop = node->loop.get()]() { loop->Run(); });
  Node* raw = node.get();
  LARD_CHECK(static_cast<size_t>(node_id) == nodes_.size());
  nodes_.push_back(std::move(node));
  RunOnLoop(raw->loop.get(), [raw, &be_ends]() {
    raw->server->Start(std::move(be_ends[0]));
    for (size_t fe = 1; fe < be_ends.size(); ++fe) {
      raw->server->AttachFrontEnd(static_cast<int>(fe), std::move(be_ends[fe]));
    }
  });
  raw->lateral_port = raw->server->lateral_port();
  return Status::Ok();
}

Status Cluster::Start() {
  LARD_CHECK(!started_);
  started_ = true;

  std::lock_guard<std::mutex> lock(nodes_mutex_);

  // Back-ends, each with one control-session socketpair per front-end.
  std::vector<std::vector<UniqueFd>> fe_ends(static_cast<size_t>(config_.num_nodes));
  for (int i = 0; i < config_.num_nodes; ++i) {
    Status status = StartBackend(i, &fe_ends[static_cast<size_t>(i)]);
    if (!status.ok()) {
      return status;
    }
  }

  // Lateral mesh.
  std::vector<uint16_t> lateral_ports;
  for (const auto& node : nodes_) {
    lateral_ports.push_back(node->lateral_port);
  }
  for (const auto& node : nodes_) {
    RunOnLoop(node->loop.get(),
              [&node, &lateral_ports]() { node->server->ConnectPeers(lateral_ports); });
  }

  // The front-end tier.
  for (int fe = 0; fe < config_.num_frontends; ++fe) {
    auto replica = std::make_unique<FeReplica>();
    replica->loop = std::make_unique<EventLoop>();
    FrontEndConfig fe_config;
    fe_config.num_nodes = config_.num_nodes;
    fe_config.fe_id = fe;
    fe_config.num_frontends = config_.num_frontends;
    fe_config.gossip_interval_ms = config_.gossip_interval_ms;
    fe_config.policy = config_.policy;
    fe_config.policy_name = config_.policy_name;
    fe_config.node_weights = config_.node_weights;
    fe_config.mechanism = config_.mechanism;
    fe_config.params = config_.params;
    fe_config.virtual_cache_bytes = config_.backend_cache_bytes;
    // Only replica 0 gets the configured port; the rest pick free ports
    // (ports() exposes the whole tier for client spraying).
    fe_config.listen_port = fe == 0 ? config_.listen_port : 0;
    fe_config.heartbeat_timeout_ms = config_.heartbeat_timeout_ms;
    fe_config.retire_grace_ms = config_.retire_grace_ms;
    fe_config.lateral_timeout_ms = config_.lateral_timeout_ms;
    fe_config.replay_enabled = config_.replay_enabled;
    fe_config.replay_journal = config_.replay_journal;
    fe_config.idempotent_methods = config_.idempotent_methods;
    fe_config.metrics = &metrics_;
    fe_config.tracer = tracer_.get();
    replica->frontend =
        std::make_unique<FrontEnd>(fe_config, replica->loop.get(), &store_.catalog());
    // Node teardown follows the front-ends' removal decisions (which may be
    // deferred past a graceful retire), not the admin call — and waits for
    // every replica to let go.
    replica->frontend->set_on_node_removed([this](NodeId node) { OnNodeRemoved(node); });
    if (config_.profile_loops) {
      replica->loop->EnableProfiling(&metrics_, "fe" + std::to_string(fe));
    }
    replica->thread = std::thread([loop = replica->loop.get()]() { loop->Run(); });
    fes_.push_back(std::move(replica));
  }
  for (int fe = 0; fe < config_.num_frontends; ++fe) {
    std::vector<UniqueFd> controls;
    controls.reserve(static_cast<size_t>(config_.num_nodes));
    for (int node = 0; node < config_.num_nodes; ++node) {
      controls.push_back(
          std::move(fe_ends[static_cast<size_t>(node)][static_cast<size_t>(fe)]));
    }
    RunOnLoop(FeLoop(static_cast<size_t>(fe)), [this, fe, &controls, &lateral_ports]() {
      Fe(static_cast<size_t>(fe))->Start(std::move(controls));
      if (config_.mechanism == Mechanism::kRelayingFrontEnd) {
        Fe(static_cast<size_t>(fe))->ConnectBackends(lateral_ports);
      }
    });
  }

  // Pairwise gossip channels between the replicas.
  for (size_t i = 0; i < fes_.size(); ++i) {
    for (size_t j = i + 1; j < fes_.size(); ++j) {
      auto pair = UnixPair();
      if (!pair.ok()) {
        return pair.status();
      }
      UniqueFd end_i = std::move(pair.value().first);
      UniqueFd end_j = std::move(pair.value().second);
      RunOnLoop(FeLoop(i), [this, i, j, &end_i]() {
        Fe(i)->AttachPeer(static_cast<uint32_t>(j), std::move(end_i));
      });
      RunOnLoop(FeLoop(j), [this, i, j, &end_j]() {
        Fe(j)->AttachPeer(static_cast<uint32_t>(i), std::move(end_j));
      });
    }
  }

  // Admin plane, on front-end 0's loop (handlers run where that dispatcher
  // lives; mesh introspection reads the other replicas' thread-safe
  // snapshots).
  if (config_.enable_admin) {
    admin_ = std::make_unique<AdminServer>(FeLoop(0), &metrics_);
    RegisterAdminRoutes();
    RunOnLoop(FeLoop(0), [this]() { admin_->Start(config_.admin_port); });
  }
  return Status::Ok();
}

void Cluster::RegisterAdminRoutes() {
  admin_->set_before_metrics([this]() { BridgeDispatcherMetrics(); });

  admin_->Route("GET", "/nodes", [this](const HttpRequest&, const std::string&) {
    return AdminResponse::Json(Fe(0)->DescribeNodesJson());
  });

  admin_->Route("GET", "/mesh", [this](const HttpRequest&, const std::string&) {
    // Every replica's mesh view: epoch, gossip lag, per-peer state. The
    // snapshots are refreshed on each replica's gossip tick and read here
    // under their mutexes (the admin runs on replica 0's loop).
    std::ostringstream out;
    out << "{\"frontends\":" << fes_.size()
        << ",\"gossip_interval_ms\":" << config_.gossip_interval_ms << ",\"fes\":[";
    for (size_t fe = 0; fe < fes_.size(); ++fe) {
      out << (fe == 0 ? "" : ",") << Fe(fe)->DescribeMeshJson();
    }
    out << "]}";
    return AdminResponse::Json(out.str());
  });

  admin_->Route("POST", "/nodes/add", [this](const HttpRequest& request, const std::string&) {
    double weight = 1.0;
    if (!ParseWeightBody(request.body, &weight)) {
      return AdminResponse::Error(
          400, "body must be empty or carry a positive weight (e.g. {\"weight\":2})");
    }
    const NodeId node = AddNode(weight);
    if (node == kInvalidNode) {
      return AdminResponse::Error(500, "failed to start node");
    }
    std::ostringstream out;
    out << "{\"id\":" << node << ",\"weight\":" << weight << "}";
    return AdminResponse::Json(out.str());
  });

  admin_->RoutePrefix("POST", "/nodes/", [this](const HttpRequest&, const std::string& tail) {
    // tail: "<id>/drain" | "<id>/remove" | "<id>/kill".
    const size_t slash = tail.find('/');
    if (slash == std::string::npos) {
      return AdminResponse::Error(400, "expected /nodes/<id>/<verb>");
    }
    NodeId node = kInvalidNode;
    try {
      node = static_cast<NodeId>(std::stol(tail.substr(0, slash)));
    } catch (...) {
      return AdminResponse::Error(400, "bad node id");
    }
    const std::string verb = tail.substr(slash + 1);
    bool ok = false;
    if (verb == "drain") {
      ok = DrainNode(node);
    } else if (verb == "remove") {
      ok = RemoveNode(node);
    } else if (verb == "kill") {
      ok = KillNode(node);
    } else {
      return AdminResponse::Error(400, "unknown verb: " + verb);
    }
    if (!ok) {
      return AdminResponse::Error(409, verb + " refused for node " +
                                           std::to_string(node));
    }
    return AdminResponse::Json("{\"id\":" + std::to_string(node) + ",\"action\":\"" + verb +
                               "\"}");
  });

  admin_->Route("GET", "/trace", [this](const HttpRequest& request, const std::string&) {
    // The router matched on the query-stripped path; re-split here for the
    // format selector.
    const size_t q = request.path.find('?');
    const std::string query = q == std::string::npos ? "" : request.path.substr(q + 1);
    AdminResponse response;
    if (query == "format=chrome") {
      // Loadable in about:tracing / Perfetto ("Open trace file").
      response.body = tracer_->RenderChrome();
    } else if (query.empty() || query == "format=json") {
      response.body = tracer_->RenderJson();
    } else {
      return AdminResponse::Error(400, "unknown format; use ?format=chrome or ?format=json");
    }
    return response;
  });

  admin_->Route("POST", "/loglevel", [](const HttpRequest& request, const std::string&) {
    LogSeverity level = LogSeverity::kInfo;
    if (!ParseLogSeverity(request.body, &level)) {
      return AdminResponse::Error(400, "unknown level; use debug|info|warning|error");
    }
    SetMinLogSeverity(level);
    LARD_LOG(WARNING) << "admin: log level set to " << LogSeverityName(level);
    return AdminResponse::Json("{\"level\":\"" + std::string(LogSeverityName(level)) + "\"}");
  });

  admin_->Route("POST", "/policy", [this](const HttpRequest& request, const std::string&) {
    // Trim so `curl -d "wrr"` and a trailing newline both work.
    const std::string name = Trim(request.body);
    if (!Fe(0)->SetPolicyByName(name)) {
      return AdminResponse::Error(
          400, "unknown policy; registered: " + PolicyRegistry::Global().NamesCsv());
    }
    // The whole tier switches (replica 0 already validated the name).
    // Fire-and-forget: blocking this loop on a peer loop could deadlock
    // with a racing Stop(), and nothing here needs the replicas' results.
    for (size_t fe = 1; fe < fes_.size(); ++fe) {
      FeLoop(fe)->Post([this, fe, name]() { (void)Fe(fe)->SetPolicyByName(name); });
    }
    // Echo the *canonical registered name* (never the raw request body: it is
    // attacker-controlled and must not be spliced into the JSON reply).
    return AdminResponse::Json(
        "{\"policy\":\"" + std::string(Fe(0)->dispatcher().policy().name()) + "\"}");
  });
}

void Cluster::BridgeDispatcherMetrics() {
  // Runs on front-end 0's loop. The dispatchers' decision counters are plain
  // uint64s, bridged as gauges on each /metrics render rather than
  // double-counted. With a replicated tier the bridged figures are the tier
  // totals; the other replicas' counters are sampled without their loops
  // (each counter is a word-sized read of a monotonically increasing value —
  // a momentarily torn view of *different* counters is the usual monitoring
  // contract).
  DispatcherCounters counters;
  size_t open_connections = 0;
  for (size_t fe = 0; fe < fes_.size(); ++fe) {
    const DispatcherCounters& part = Fe(fe)->dispatcher().counters();
    counters.requests += part.requests;
    counters.handoffs += part.handoffs;
    counters.forwards += part.forwards;
    counters.local_serves += part.local_serves;
    counters.migrations += part.migrations;
    counters.relays += part.relays;
    counters.nodes_removed += part.nodes_removed;
    counters.orphaned_connections += part.orphaned_connections;
    counters.reassignments += part.reassignments;
    counters.failure_reassignments += part.failure_reassignments;
    open_connections += Fe(fe)->dispatcher().open_connections();
  }
  metrics_.Gauge("lard_dispatcher_requests")->Set(static_cast<double>(counters.requests));
  metrics_.Gauge("lard_dispatcher_handoffs")->Set(static_cast<double>(counters.handoffs));
  metrics_.Gauge("lard_dispatcher_forwards")->Set(static_cast<double>(counters.forwards));
  metrics_.Gauge("lard_dispatcher_local_serves")->Set(static_cast<double>(counters.local_serves));
  metrics_.Gauge("lard_dispatcher_migrations")->Set(static_cast<double>(counters.migrations));
  metrics_.Gauge("lard_dispatcher_relays")->Set(static_cast<double>(counters.relays));
  metrics_.Gauge("lard_dispatcher_open_connections")
      ->Set(static_cast<double>(open_connections));
  metrics_.Gauge("lard_dispatcher_nodes_removed")
      ->Set(static_cast<double>(counters.nodes_removed));
  metrics_.Gauge("lard_dispatcher_orphaned_connections")
      ->Set(static_cast<double>(counters.orphaned_connections));
  metrics_.Gauge("lard_dispatcher_reassignments")
      ->Set(static_cast<double>(counters.reassignments));
  metrics_.Gauge("lard_dispatcher_failure_reassignments")
      ->Set(static_cast<double>(counters.failure_reassignments));
}

NodeId Cluster::AddNode(double weight) {
  // Membership operations are serialized on front-end 0's loop thread
  // (inline when an admin handler calls us there), so concurrent joins
  // cannot interleave id allocation across the replicas. nodes_mutex_ is
  // held only around the backend bring-up (which posts exclusively to the
  // *node's own* fresh loop) and released before fanning out to the other
  // front-end loops — those may be blocked on the mutex inside
  // OnNodeRemoved, and waiting on them while holding it would deadlock.
  NodeId node_id = kInvalidNode;
  RunOnLoop(FeLoop(0), [this, weight, &node_id]() {
    NodeId fresh_id = kInvalidNode;
    Node* fresh = nullptr;
    std::vector<UniqueFd> fe_ends;
    {
      std::lock_guard<std::mutex> lock(nodes_mutex_);
      if (stopped_) {
        return;
      }
      fresh_id = static_cast<NodeId>(nodes_.size());
      if (!StartBackend(fresh_id, &fe_ends).ok()) {
        return;
      }
      fresh = nodes_.back().get();

      // Lateral mesh: the new node learns every live peer; every live peer
      // learns the new node.
      std::vector<uint16_t> lateral_ports;
      for (const auto& node : nodes_) {
        lateral_ports.push_back(node->lateral_port);
      }
      RunOnLoop(fresh->loop.get(),
                [fresh, &lateral_ports]() { fresh->server->ConnectPeers(lateral_ports); });
      for (NodeId peer = 0; peer < fresh_id; ++peer) {
        Node* node = nodes_[static_cast<size_t>(peer)].get();
        if (node->stopped) {
          continue;
        }
        RunOnLoop(node->loop.get(), [node, fresh_id, port = fresh->lateral_port]() {
          node->server->AddPeer(fresh_id, port);
        });
      }
    }

    // Every front-end replica registers the node — same id on all of them:
    // joins are serialized here, ids are never reused, and each replica's
    // loop runs its membership posts in order. Replica 0 registers inline
    // (we are on its loop); the rest are fire-and-forget like the other
    // fan-outs (a blocking wait could deadlock with a racing Stop()).
    const uint16_t lateral_port = fresh->lateral_port;
    const NodeId assigned = Fe(0)->AddNode(std::move(fe_ends[0]), lateral_port, weight);
    LARD_CHECK(assigned == fresh_id);
    for (size_t fe = 1; fe < fes_.size(); ++fe) {
      auto fd = std::make_shared<UniqueFd>(std::move(fe_ends[fe]));
      FeLoop(fe)->Post([this, fe, fd, fresh_id, weight, lateral_port]() {
        const NodeId replica_assigned = Fe(fe)->AddNode(std::move(*fd), lateral_port, weight);
        LARD_CHECK(replica_assigned == fresh_id) << "front-end replicas diverged on a join";
      });
    }
    node_id = fresh_id;
  });
  return node_id;
}

bool Cluster::DrainNode(NodeId node) {
  bool ok = false;
  RunOnLoop(FeLoop(0), [this, node, &ok]() {
    ok = Fe(0)->DrainNode(node);
    // Fire-and-forget to the other replicas (see the /policy fan-out): the
    // caller's answer is replica 0's, and a blocking wait here could
    // deadlock with a racing Stop().
    for (size_t fe = 1; fe < fes_.size(); ++fe) {
      FeLoop(fe)->Post([this, fe, node]() { (void)Fe(fe)->DrainNode(node); });
    }
  });
  return ok;
}

void Cluster::StopNodeLocked(NodeId node, bool destroy_server) {
  Node* target = nodes_[static_cast<size_t>(node)].get();
  if (target->stopped) {
    return;
  }
  target->stopped = true;
  if (destroy_server) {
    // Tear the server down on its own loop first so fds unregister cleanly
    // and its clients see EOF instead of silence.
    RunOnLoop(target->loop.get(), [target]() { target->server.reset(); });
  }
  target->loop->Stop();
  if (target->thread.joinable()) {
    target->thread.join();
  }
}

void Cluster::OnNodeRemoved(NodeId node) {
  // Some front-end replica's loop thread: that replica has torn its control
  // session down. The node's loop may only stop once *every* replica has
  // let go — an early teardown would reset connections the other replicas
  // still route.
  std::lock_guard<std::mutex> lock(nodes_mutex_);
  if (node < 0 || static_cast<size_t>(node) >= nodes_.size() || stopped_) {
    return;
  }
  const int acks = ++removal_acks_[node];
  if (acks < static_cast<int>(fes_.size())) {
    return;
  }
  StopNodeLocked(node, /*destroy_server=*/true);
}

bool Cluster::RemoveNode(NodeId node) {
  bool ok = false;
  // Teardown of the node's thread happens via OnNodeRemoved once every
  // front-end finishes its (possibly deferred, graceful) removal.
  RunOnLoop(FeLoop(0), [this, node, &ok]() {
    ok = Fe(0)->RemoveNode(node);
    for (size_t fe = 1; fe < fes_.size(); ++fe) {
      FeLoop(fe)->Post([this, fe, node]() { (void)Fe(fe)->RemoveNode(node); });
    }
  });
  return ok;
}

bool Cluster::KillNode(NodeId node) {
  bool ok = false;
  RunOnLoop(FeLoop(0), [this, node, &ok]() {
    std::lock_guard<std::mutex> lock(nodes_mutex_);
    if (node < 0 || static_cast<size_t>(node) >= nodes_.size() ||
        nodes_[static_cast<size_t>(node)]->stopped) {
      return;
    }
    // No front-end notification, no fd teardown: the node simply goes silent
    // (its control sessions and client sockets stay open but unserviced), so
    // detection must come from every replica's heartbeat timeout.
    StopNodeLocked(node, /*destroy_server=*/false);
    LARD_LOG(WARNING) << "cluster: node " << node << " killed (silent crash)";
    ok = true;
  });
  return ok;
}

void Cluster::Stop() {
  {
    // stopped_ is read under nodes_mutex_ by OnNodeRemoved on the front-end
    // loops; publish it under the same lock (but release before joining the
    // loop threads, which may be blocked acquiring it).
    std::lock_guard<std::mutex> lock(nodes_mutex_);
    if (!started_ || stopped_) {
      return;
    }
    stopped_ = true;
  }
  for (auto& replica : fes_) {
    replica->loop->Stop();
  }
  for (auto& replica : fes_) {
    if (replica->thread.joinable()) {
      replica->thread.join();
    }
  }
  std::lock_guard<std::mutex> lock(nodes_mutex_);
  for (auto& node : nodes_) {
    node->loop->Stop();
    if (node->thread.joinable()) {
      node->thread.join();
    }
  }
}

uint16_t Cluster::port() const {
  LARD_CHECK(!fes_.empty());
  return Fe(0)->port();
}

std::vector<uint16_t> Cluster::ports() const {
  std::vector<uint16_t> out;
  out.reserve(fes_.size());
  for (size_t fe = 0; fe < fes_.size(); ++fe) {
    out.push_back(Fe(fe)->port());
  }
  return out;
}

void Cluster::InspectReplica(int fe, const std::function<void(const FrontEnd&)>& fn) const {
  LARD_CHECK(fe >= 0 && static_cast<size_t>(fe) < fes_.size());
  RunOnLoop(FeLoop(static_cast<size_t>(fe)),
            [this, fe, &fn]() { fn(*Fe(static_cast<size_t>(fe))); });
}

const FrontEnd& Cluster::frontend(int fe) const {
  LARD_CHECK(fe >= 0 && static_cast<size_t>(fe) < fes_.size());
  return *Fe(static_cast<size_t>(fe));
}

uint16_t Cluster::admin_port() const {
  LARD_CHECK(admin_ != nullptr) << "admin server disabled";
  return admin_->port();
}

ClusterSnapshot Cluster::Snapshot() const {
  ClusterSnapshot snapshot;
  std::lock_guard<std::mutex> lock(nodes_mutex_);
  for (const auto& node : nodes_) {
    if (node->server == nullptr) {
      snapshot.requests_per_node.push_back(0);
      continue;
    }
    const BackendCounters& counters = node->server->counters();
    const uint64_t requests = counters.requests_served.load(std::memory_order_relaxed);
    snapshot.requests_served += requests;
    snapshot.requests_per_node.push_back(requests);
    snapshot.local_hits += counters.local_hits.load(std::memory_order_relaxed);
    snapshot.local_misses += counters.local_misses.load(std::memory_order_relaxed);
    snapshot.lateral_out += counters.lateral_out.load(std::memory_order_relaxed);
    snapshot.bytes_to_clients += counters.bytes_to_clients.load(std::memory_order_relaxed);
    snapshot.not_found += counters.not_found.load(std::memory_order_relaxed);
    snapshot.migrations += counters.handbacks.load(std::memory_order_relaxed);
    snapshot.drain_handbacks += counters.drain_handbacks.load(std::memory_order_relaxed);
    snapshot.replays_adopted += counters.replays_adopted.load(std::memory_order_relaxed);
    snapshot.spliced_responses += counters.spliced_responses.load(std::memory_order_relaxed);
  }
  for (size_t fe = 0; fe < fes_.size(); ++fe) {
    const FrontEndCounters& counters = Fe(fe)->counters();
    snapshot.connections += counters.connections_accepted.load();
    snapshot.consults += counters.consults.load();
    snapshot.handoffs += counters.handoffs.load();
    snapshot.rehandoffs += counters.rehandoffs.load();
    snapshot.replays += counters.replays.load();
    snapshot.replay_giveups += counters.replay_giveups.load();
    snapshot.heartbeats += counters.heartbeats.load();
    snapshot.auto_removals += counters.auto_removals.load();
    if (config_.mechanism == Mechanism::kRelayingFrontEnd) {
      // Relay mode serves clients from the front-ends; back-end
      // requests_served counters stay zero (their lateral path served the
      // fetches).
      snapshot.requests_served += counters.relayed_requests.load();
    }
  }
  const uint64_t lookups = snapshot.local_hits + snapshot.local_misses;
  snapshot.cache_hit_rate =
      lookups > 0 ? static_cast<double>(snapshot.local_hits) / static_cast<double>(lookups) : 0.0;
  return snapshot;
}

}  // namespace lard
