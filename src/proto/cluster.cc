#include "src/proto/cluster.h"

#include <future>

#include "src/net/socket.h"
#include "src/util/logging.h"

namespace lard {
namespace {

// Runs `fn` on the loop's thread and waits for completion.
void RunOnLoop(EventLoop* loop, std::function<void()> fn) {
  std::promise<void> done;
  auto future = done.get_future();
  loop->Post([&fn, &done]() {
    fn();
    done.set_value();
  });
  future.wait();
}

}  // namespace

// One back-end node: loop thread + server. Declaration order matters: the
// loop must outlive the server (whose teardown unregisters fds).
struct Cluster::Node {
  std::unique_ptr<EventLoop> loop;
  std::unique_ptr<BackendServer> server;
  std::thread thread;
};

Cluster::Cluster(const ClusterConfig& config, const TargetCatalog* catalog)
    : config_(config), store_(catalog) {
  LARD_CHECK(config_.num_nodes > 0);
}

Cluster::~Cluster() { Stop(); }

Status Cluster::Start() {
  LARD_CHECK(!started_);
  started_ = true;

  // Control sessions: one unix socketpair per back-end.
  std::vector<UniqueFd> fe_ends;
  std::vector<UniqueFd> be_ends;
  for (int i = 0; i < config_.num_nodes; ++i) {
    auto pair = UnixPair();
    if (!pair.ok()) {
      return pair.status();
    }
    fe_ends.push_back(std::move(pair.value().first));
    be_ends.push_back(std::move(pair.value().second));
  }

  // Back-ends.
  for (int i = 0; i < config_.num_nodes; ++i) {
    auto node = std::make_unique<Node>();
    node->loop = std::make_unique<EventLoop>();
    BackendConfig backend_config;
    backend_config.node_id = i;
    backend_config.num_nodes = config_.num_nodes;
    backend_config.cache_bytes = config_.backend_cache_bytes;
    backend_config.disk_costs = config_.disk_costs;
    backend_config.disk_time_scale = config_.disk_time_scale;
    backend_config.idle_close_ms = config_.idle_close_ms;
    node->server = std::make_unique<BackendServer>(backend_config, node->loop.get(), &store_);
    node->thread = std::thread([loop = node->loop.get()]() { loop->Run(); });
    nodes_.push_back(std::move(node));
  }
  for (int i = 0; i < config_.num_nodes; ++i) {
    Node* node = nodes_[static_cast<size_t>(i)].get();
    RunOnLoop(node->loop.get(), [node, fd = &be_ends[static_cast<size_t>(i)]]() {
      node->server->Start(std::move(*fd));
    });
  }

  // Lateral mesh.
  std::vector<uint16_t> lateral_ports;
  for (const auto& node : nodes_) {
    lateral_ports.push_back(node->server->lateral_port());
  }
  for (const auto& node : nodes_) {
    RunOnLoop(node->loop.get(),
              [&node, &lateral_ports]() { node->server->ConnectPeers(lateral_ports); });
  }

  // Front-end.
  fe_loop_ = std::make_unique<EventLoop>();
  FrontEndConfig fe_config;
  fe_config.num_nodes = config_.num_nodes;
  fe_config.policy = config_.policy;
  fe_config.mechanism = config_.mechanism;
  fe_config.params = config_.params;
  fe_config.virtual_cache_bytes = config_.backend_cache_bytes;
  fe_config.listen_port = config_.listen_port;
  frontend_ = std::make_unique<FrontEnd>(fe_config, fe_loop_.get(), &store_.catalog());
  fe_thread_ = std::thread([loop = fe_loop_.get()]() { loop->Run(); });
  RunOnLoop(fe_loop_.get(), [this, &fe_ends, &lateral_ports]() {
    frontend_->Start(std::move(fe_ends));
    if (config_.mechanism == Mechanism::kRelayingFrontEnd) {
      frontend_->ConnectBackends(lateral_ports);
    }
  });
  return Status::Ok();
}

void Cluster::Stop() {
  if (!started_ || stopped_) {
    return;
  }
  stopped_ = true;
  if (fe_loop_ != nullptr) {
    fe_loop_->Stop();
  }
  if (fe_thread_.joinable()) {
    fe_thread_.join();
  }
  for (auto& node : nodes_) {
    node->loop->Stop();
    if (node->thread.joinable()) {
      node->thread.join();
    }
  }
}

uint16_t Cluster::port() const {
  LARD_CHECK(frontend_ != nullptr);
  return frontend_->port();
}

ClusterSnapshot Cluster::Snapshot() const {
  ClusterSnapshot snapshot;
  for (const auto& node : nodes_) {
    const BackendCounters& counters = node->server->counters();
    const uint64_t requests = counters.requests_served.load(std::memory_order_relaxed);
    snapshot.requests_served += requests;
    snapshot.requests_per_node.push_back(requests);
    snapshot.local_hits += counters.local_hits.load(std::memory_order_relaxed);
    snapshot.local_misses += counters.local_misses.load(std::memory_order_relaxed);
    snapshot.lateral_out += counters.lateral_out.load(std::memory_order_relaxed);
    snapshot.bytes_to_clients += counters.bytes_to_clients.load(std::memory_order_relaxed);
    snapshot.not_found += counters.not_found.load(std::memory_order_relaxed);
    snapshot.migrations += counters.handbacks.load(std::memory_order_relaxed);
  }
  if (frontend_ != nullptr) {
    snapshot.connections = frontend_->counters().connections_accepted.load();
    snapshot.consults = frontend_->counters().consults.load();
    snapshot.handoffs = frontend_->counters().handoffs.load();
    if (config_.mechanism == Mechanism::kRelayingFrontEnd) {
      // Relay mode serves clients from the front-end; back-end
      // requests_served counters stay zero (their lateral path served the
      // fetches).
      snapshot.requests_served += frontend_->counters().relayed_requests.load();
    }
  }
  const uint64_t lookups = snapshot.local_hits + snapshot.local_misses;
  snapshot.cache_hit_rate =
      lookups > 0 ? static_cast<double>(snapshot.local_hits) / static_cast<double>(lookups) : 0.0;
  return snapshot;
}

}  // namespace lard
