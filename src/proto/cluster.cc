#include "src/proto/cluster.h"

#include <cmath>
#include <cstdlib>
#include <future>
#include <map>
#include <sstream>

#include "src/core/policy.h"
#include "src/net/socket.h"
#include "src/obs/process_stats.h"
#include "src/util/logging.h"

namespace lard {
namespace {

// Runs `fn` on the loop's thread and waits for completion. Runs inline when
// already on that thread (admin handlers run on the front-end loop and call
// membership operations that target the same loop).
void RunOnLoop(EventLoop* loop, std::function<void()> fn) {
  if (loop->IsInLoopThread()) {
    fn();
    return;
  }
  std::promise<void> done;
  auto future = done.get_future();
  loop->Post([&fn, &done]() {
    fn();
    done.set_value();
  });
  future.wait();
}

std::string Trim(const std::string& text) {
  const size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) {
    return std::string();
  }
  return text.substr(begin, text.find_last_not_of(" \t\r\n") + 1 - begin);
}

// Strict number parse: the whole (trimmed) string must be one double that
// passes the shared capacity-weight validator (positive and finite — the
// same IsValidCapacityWeight the dispatcher CHECKs and the simulator's
// membership events are screened by). Trailing garbage ("2,5", "2.5x") is
// rejected, not silently truncated.
bool ParsePositiveNumber(const std::string& text, double* value) {
  const std::string trimmed = Trim(text);
  if (trimmed.empty()) {
    return false;
  }
  char* parse_end = nullptr;
  const double parsed = std::strtod(trimmed.c_str(), &parse_end);
  if (parse_end != trimmed.c_str() + trimmed.size() || !IsValidCapacityWeight(parsed)) {
    return false;
  }
  *value = parsed;
  return true;
}

// Parses the optional capacity weight of a POST /nodes/add body. Accepts an
// empty body (weight 1.0), a bare number ("2.5"), a form pair ("weight=2.5")
// or a tiny JSON object ({"weight":2.5}). Returns false on anything else or
// a non-positive/non-finite weight.
bool ParseWeightBody(const std::string& body, double* weight) {
  *weight = 1.0;
  const std::string trimmed = Trim(body);
  if (trimmed.empty()) {
    return true;  // empty body: default weight
  }
  if (trimmed.front() == '{') {
    // {"weight": <number>} and nothing else.
    if (trimmed.back() != '}') {
      return false;
    }
    std::string inner = Trim(trimmed.substr(1, trimmed.size() - 2));
    static constexpr char kKey[] = "\"weight\"";
    if (inner.compare(0, sizeof(kKey) - 1, kKey) != 0) {
      return false;
    }
    inner = Trim(inner.substr(sizeof(kKey) - 1));
    if (inner.empty() || inner.front() != ':') {
      return false;
    }
    return ParsePositiveNumber(inner.substr(1), weight);
  }
  const size_t equals = trimmed.find('=');
  if (equals != std::string::npos) {
    // weight=<number> and nothing else.
    if (Trim(trimmed.substr(0, equals)) != "weight") {
      return false;
    }
    return ParsePositiveNumber(trimmed.substr(equals + 1), weight);
  }
  return ParsePositiveNumber(trimmed, weight);
}

// key=value pairs of a request path's query string (the router matches on the
// query-stripped path, so handlers re-split here). No URL decoding: the admin
// API's parameter values are plain identifiers/numbers.
std::map<std::string, std::string> ParseQuery(const std::string& path) {
  std::map<std::string, std::string> params;
  const size_t q = path.find('?');
  if (q == std::string::npos) {
    return params;
  }
  std::string query = path.substr(q + 1);
  size_t begin = 0;
  while (begin <= query.size()) {
    size_t end = query.find('&', begin);
    if (end == std::string::npos) {
      end = query.size();
    }
    const std::string pair = query.substr(begin, end - begin);
    const size_t equals = pair.find('=');
    if (equals != std::string::npos) {
      params[pair.substr(0, equals)] = pair.substr(equals + 1);
    } else if (!pair.empty()) {
      params[pair] = "";
    }
    begin = end + 1;
  }
  return params;
}

std::string QueryParam(const std::map<std::string, std::string>& params, const char* key) {
  const auto it = params.find(key);
  return it == params.end() ? std::string() : it->second;
}

// Strict non-negative integer parse (the /slowlog body, the /timeseries
// window). The whole trimmed string must be one base-10 integer.
bool ParseNonNegativeInt(const std::string& text, int64_t* value) {
  const std::string trimmed = Trim(text);
  if (trimmed.empty()) {
    return false;
  }
  char* parse_end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(trimmed.c_str(), &parse_end, 10);
  if (errno != 0 || parse_end != trimmed.c_str() + trimmed.size() || parsed < 0) {
    return false;
  }
  *value = parsed;
  return true;
}

// Parses a single-knob POST body: empty (0 = disable), a bare integer,
// "<key>=N" or {"<key>":N}. Shared by /slowlog (key threshold_us) and
// /idletimeout (key idle_timeout_ms).
bool ParseKeyedNonNegativeInt(const std::string& body, const std::string& key, int64_t* value) {
  *value = 0;
  std::string trimmed = Trim(body);
  if (trimmed.empty()) {
    return true;
  }
  if (trimmed.front() == '{') {
    if (trimmed.back() != '}') {
      return false;
    }
    std::string inner = Trim(trimmed.substr(1, trimmed.size() - 2));
    const std::string quoted = "\"" + key + "\"";
    if (inner.compare(0, quoted.size(), quoted) != 0) {
      return false;
    }
    inner = Trim(inner.substr(quoted.size()));
    if (inner.empty() || inner.front() != ':') {
      return false;
    }
    return ParseNonNegativeInt(inner.substr(1), value);
  }
  const size_t equals = trimmed.find('=');
  if (equals != std::string::npos) {
    if (Trim(trimmed.substr(0, equals)) != key) {
      return false;
    }
    return ParseNonNegativeInt(trimmed.substr(equals + 1), value);
  }
  return ParseNonNegativeInt(trimmed, value);
}

bool ParseSlowlogBody(const std::string& body, int64_t* threshold_us) {
  return ParseKeyedNonNegativeInt(body, "threshold_us", threshold_us);
}

}  // namespace

// One back-end node: loop thread + server. Declaration order matters: the
// loop must outlive the server (whose teardown unregisters fds).
struct Cluster::Node {
  std::unique_ptr<EventLoop> loop;
  std::unique_ptr<BackendServer> server;
  std::thread thread;
  uint16_t lateral_port = 0;
  double weight = 1.0;   // capacity weight it joined with (for late FE joins)
  bool stopped = false;  // loop stopped (removed or killed)
};

Cluster::Cluster(const ClusterConfig& config, const TargetCatalog* catalog)
    : config_(config), store_(catalog) {
  LARD_CHECK(config_.num_nodes > 0);
  LARD_CHECK(config_.num_frontends > 0);
  if (config_.fe_loops <= 0) {
    // 0 = auto: the LARD_FE_LOOPS environment variable (so the whole test
    // suite can be swept multi-loop without touching configs), else 1.
    const char* env = std::getenv("LARD_FE_LOOPS");
    const int parsed = env != nullptr ? std::atoi(env) : 0;
    config_.fe_loops = parsed > 0 ? parsed : 1;
  }
  if (config_.fe_loops > 64) {
    config_.fe_loops = 64;
  }
  TracerConfig tracer_config;
  tracer_config.enabled = config_.tracing_enabled;
  tracer_config.sample_every = config_.trace_sample_every;
  tracer_config.ring_capacity = config_.trace_ring_capacity;
  tracer_config.slow_threshold_us = config_.slow_request_threshold_us;
  tracer_ = std::make_unique<Tracer>(tracer_config);
}

Cluster::~Cluster() { Stop(); }

Status Cluster::StartBackend(NodeId node_id, std::vector<UniqueFd>* fe_ends) {
  // One control-session socketpair per *live* front-end replica. During
  // Start() the FE tier doesn't exist yet, so the configured count applies;
  // on later joins the tier may have grown (AddFrontEnd) or have holes
  // (RemoveFrontEnd) — removed slots get no pair (invalid fds).
  const size_t fe_count =
      fes_.empty() ? static_cast<size_t>(config_.num_frontends) : fes_.size();
  std::vector<UniqueFd> be_ends;
  fe_ends->clear();
  for (size_t fe = 0; fe < fe_count; ++fe) {
    if (!fes_.empty() && fes_[fe]->frontend == nullptr) {
      fe_ends->emplace_back();
      be_ends.emplace_back();
      continue;
    }
    auto pair = UnixPair();
    if (!pair.ok()) {
      return pair.status();
    }
    fe_ends->push_back(std::move(pair.value().first));
    be_ends.push_back(std::move(pair.value().second));
  }

  auto node = std::make_unique<Node>();
  node->loop = std::make_unique<EventLoop>();
  BackendConfig backend_config;
  backend_config.node_id = node_id;
  backend_config.num_nodes = node_id + 1;
  backend_config.cache_bytes = config_.backend_cache_bytes;
  backend_config.disk_costs = config_.disk_costs;
  backend_config.disk_time_scale = config_.disk_time_scale;
  backend_config.idle_close_ms = config_.idle_close_ms;
  backend_config.lateral_timeout_ms = config_.lateral_timeout_ms;
  backend_config.heartbeat_interval_ms = config_.heartbeat_interval_ms;
  backend_config.telemetry_interval_ms = config_.telemetry_interval_ms;
  backend_config.metrics = &metrics_;
  backend_config.tracer = tracer_.get();
  node->server = std::make_unique<BackendServer>(backend_config, node->loop.get(), &store_);
  if (config_.profile_loops) {
    // Must precede Run(): the loop thread starts just below.
    node->loop->EnableProfiling(&metrics_, "be" + std::to_string(node_id));
  }
  node->thread = std::thread([loop = node->loop.get()]() { loop->Run(); });
  Node* raw = node.get();
  LARD_CHECK(static_cast<size_t>(node_id) == nodes_.size());
  nodes_.push_back(std::move(node));
  RunOnLoop(raw->loop.get(), [raw, &be_ends]() {
    raw->server->Start(std::move(be_ends[0]));
    for (size_t fe = 1; fe < be_ends.size(); ++fe) {
      if (be_ends[fe].valid()) {
        raw->server->AttachFrontEnd(static_cast<int>(fe), std::move(be_ends[fe]));
      }
    }
  });
  raw->lateral_port = raw->server->lateral_port();
  return Status::Ok();
}

Status Cluster::Start() {
  MutexLock lock(&nodes_mutex_);
  // started_ is read under nodes_mutex_ by the membership verbs on the
  // front-end loops; the write must be published under the same lock (the
  // annotation pass caught the old unlocked write).
  LARD_CHECK(!started_);
  started_ = true;

  // Back-ends, each with one control-session socketpair per front-end.
  std::vector<std::vector<UniqueFd>> fe_ends(static_cast<size_t>(config_.num_nodes));
  for (int i = 0; i < config_.num_nodes; ++i) {
    Status status = StartBackend(i, &fe_ends[static_cast<size_t>(i)]);
    if (!status.ok()) {
      return status;
    }
  }

  // Remember each node's capacity weight so front-ends joining later
  // (AddFrontEnd) register the same weights the tier started with.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->weight = i < config_.node_weights.size() ? config_.node_weights[i] : 1.0;
  }

  // Lateral mesh.
  std::vector<uint16_t> lateral_ports;
  for (const auto& node : nodes_) {
    lateral_ports.push_back(node->lateral_port);
  }
  for (const auto& node : nodes_) {
    RunOnLoop(node->loop.get(),
              [&node, &lateral_ports]() { node->server->ConnectPeers(lateral_ports); });
  }

  // The front-end tier: each replica gets its own EventLoopGroup of
  // fe_loops reactors. Loop 0 carries the control plane; client
  // connections shard across all loops (see FrontEnd).
  for (int fe = 0; fe < config_.num_frontends; ++fe) {
    auto replica = std::make_unique<FeReplica>();
    replica->loops = std::make_unique<EventLoopGroup>(config_.fe_loops);
    FrontEndConfig fe_config;
    fe_config.num_nodes = config_.num_nodes;
    fe_config.fe_id = fe;
    fe_config.num_frontends = config_.num_frontends;
    fe_config.gossip_interval_ms = config_.gossip_interval_ms;
    fe_config.policy = config_.policy;
    fe_config.policy_name = config_.policy_name;
    fe_config.node_weights = config_.node_weights;
    fe_config.mechanism = config_.mechanism;
    fe_config.params = config_.params;
    fe_config.virtual_cache_bytes = config_.backend_cache_bytes;
    // Only replica 0 gets the configured port; the rest pick free ports
    // (ports() exposes the whole tier for client spraying).
    fe_config.listen_port = fe == 0 ? config_.listen_port : 0;
    fe_config.heartbeat_timeout_ms = config_.heartbeat_timeout_ms;
    fe_config.retire_grace_ms = config_.retire_grace_ms;
    fe_config.lateral_timeout_ms = config_.lateral_timeout_ms;
    fe_config.replay_enabled = config_.replay_enabled;
    fe_config.replay_journal = config_.replay_journal;
    fe_config.idempotent_methods = config_.idempotent_methods;
    fe_config.metrics = &metrics_;
    fe_config.tracer = tracer_.get();
    fe_config.telemetry_interval_ms = config_.telemetry_interval_ms;
    fe_config.slo_rules = config_.slo_rules;
    fe_config.idle_timeout_ms = config_.idle_timeout_ms;
    replica->frontend =
        std::make_unique<FrontEnd>(fe_config, replica->loops.get(), &store_.catalog());
    // Node teardown follows the front-ends' removal decisions (which may be
    // deferred past a graceful retire), not the admin call — and waits for
    // every replica to let go.
    replica->frontend->set_on_node_removed([this](NodeId node) { OnNodeRemoved(node); });
    if (config_.profile_loops) {
      // Per-loop twins: "fe<k>" for loop 0 (historic label), "fe<k>.<n>"
      // for the extra reactors. Must precede Start(): threads spawn below.
      replica->loops->EnableProfiling(&metrics_, "fe" + std::to_string(fe));
    }
    replica->loops->Start();
    fes_.push_back(std::move(replica));
  }
  for (int fe = 0; fe < config_.num_frontends; ++fe) {
    std::vector<UniqueFd> controls;
    controls.reserve(static_cast<size_t>(config_.num_nodes));
    for (int node = 0; node < config_.num_nodes; ++node) {
      controls.push_back(
          std::move(fe_ends[static_cast<size_t>(node)][static_cast<size_t>(fe)]));
    }
    RunOnLoop(FeLoop(static_cast<size_t>(fe)), [this, fe, &controls, &lateral_ports]() {
      Fe(static_cast<size_t>(fe))->Start(std::move(controls));
      if (config_.mechanism == Mechanism::kRelayingFrontEnd) {
        Fe(static_cast<size_t>(fe))->ConnectBackends(lateral_ports);
      }
    });
  }

  // Pairwise gossip channels between the replicas.
  for (size_t i = 0; i < fes_.size(); ++i) {
    for (size_t j = i + 1; j < fes_.size(); ++j) {
      auto pair = UnixPair();
      if (!pair.ok()) {
        return pair.status();
      }
      UniqueFd end_i = std::move(pair.value().first);
      UniqueFd end_j = std::move(pair.value().second);
      RunOnLoop(FeLoop(i), [this, i, j, &end_i]() {
        Fe(i)->AttachPeer(static_cast<uint32_t>(j), std::move(end_i));
      });
      RunOnLoop(FeLoop(j), [this, i, j, &end_j]() {
        Fe(j)->AttachPeer(static_cast<uint32_t>(i), std::move(end_j));
      });
    }
  }

  // Admin plane, on front-end 0's loop (handlers run where that dispatcher
  // lives; mesh introspection reads the other replicas' thread-safe
  // snapshots).
  if (config_.enable_admin) {
    admin_ = std::make_unique<AdminServer>(FeLoop(0), &metrics_);
    RegisterAdminRoutes();
    RunOnLoop(FeLoop(0), [this]() { admin_->Start(config_.admin_port); });
  }
  return Status::Ok();
}

void Cluster::RegisterAdminRoutes() {
  admin_->set_before_metrics([this]() {
    BridgeDispatcherMetrics();
    // Build info + uptime/RSS/fd gauges refresh on every render, so they are
    // live even when the telemetry tick (which also refreshes them) is off.
    UpdateProcessMetrics(&metrics_);
  });

  admin_->Route("GET", "/nodes", [this](const HttpRequest&, const std::string&) {
    return AdminResponse::Json(Fe(0)->DescribeNodesJson());
  });

  admin_->Route("GET", "/mesh", [this](const HttpRequest&, const std::string&) {
    // Every replica's mesh view: epoch, gossip lag, per-peer state. The
    // snapshots are refreshed on each replica's gossip tick and read here
    // under their mutexes (the admin runs on replica 0's loop).
    std::ostringstream out;
    out << "{\"frontends\":" << fes_.size()
        << ",\"gossip_interval_ms\":" << config_.gossip_interval_ms << ",\"fes\":[";
    bool first = true;
    for (size_t fe = 0; fe < fes_.size(); ++fe) {
      if (Fe(fe) == nullptr) {
        continue;  // removed replica
      }
      out << (first ? "" : ",") << Fe(fe)->DescribeMeshJson();
      first = false;
    }
    out << "]}";
    return AdminResponse::Json(out.str());
  });

  admin_->Route("POST", "/nodes/add", [this](const HttpRequest& request, const std::string&) {
    double weight = 1.0;
    if (!ParseWeightBody(request.body, &weight)) {
      return AdminResponse::Error(
          400, "body must be empty or carry a positive weight (e.g. {\"weight\":2})");
    }
    const NodeId node = AddNode(weight);
    if (node == kInvalidNode) {
      return AdminResponse::Error(500, "failed to start node");
    }
    std::ostringstream out;
    out << "{\"id\":" << node << ",\"weight\":" << weight << "}";
    return AdminResponse::Json(out.str());
  });

  admin_->RoutePrefix("POST", "/nodes/", [this](const HttpRequest&, const std::string& tail) {
    // tail: "<id>/drain" | "<id>/remove" | "<id>/kill".
    const size_t slash = tail.find('/');
    if (slash == std::string::npos) {
      return AdminResponse::Error(400, "expected /nodes/<id>/<verb>");
    }
    NodeId node = kInvalidNode;
    try {
      node = static_cast<NodeId>(std::stol(tail.substr(0, slash)));
    } catch (...) {
      return AdminResponse::Error(400, "bad node id");
    }
    const std::string verb = tail.substr(slash + 1);
    bool ok = false;
    if (verb == "drain") {
      ok = DrainNode(node);
    } else if (verb == "remove") {
      ok = RemoveNode(node);
    } else if (verb == "kill") {
      ok = KillNode(node);
    } else {
      return AdminResponse::Error(400, "unknown verb: " + verb);
    }
    if (!ok) {
      return AdminResponse::Error(409, verb + " refused for node " +
                                           std::to_string(node));
    }
    return AdminResponse::Json("{\"id\":" + std::to_string(node) + ",\"action\":\"" + verb +
                               "\"}");
  });

  admin_->Route("GET", "/trace", [this](const HttpRequest& request, const std::string&) {
    // The router matched on the query-stripped path; re-split here for the
    // format selector and the optional per-ring filter
    // (?component=fe0|fe0.1|be2|sim).
    const auto params = ParseQuery(request.path);
    const std::string format = QueryParam(params, "format");
    const std::string component = QueryParam(params, "component");
    if (!component.empty() && !tracer_->HasRing(component)) {
      return AdminResponse::Error(404, "unknown component: " + component);
    }
    AdminResponse response;
    if (format == "chrome") {
      // Loadable in about:tracing / Perfetto ("Open trace file").
      response.body = tracer_->RenderChrome(component);
    } else if (format.empty() || format == "json") {
      response.body = tracer_->RenderJson(component);
    } else {
      return AdminResponse::Error(400, "unknown format; use ?format=chrome or ?format=json");
    }
    return response;
  });

  admin_->Route("GET", "/timeseries", [this](const HttpRequest& request, const std::string&) {
    // ?metric=<substring>&component=<fe0|be1|...>&window=<ms>. Each FE
    // replica contributes its own series; the back-end mirrors are rendered
    // from replica 0 only (every replica holds an equivalent copy).
    const auto params = ParseQuery(request.path);
    const std::string metric = QueryParam(params, "metric");
    const std::string component = QueryParam(params, "component");
    int64_t window_ms = 0;
    const std::string window = QueryParam(params, "window");
    if (!window.empty() && !ParseNonNegativeInt(window, &window_ms)) {
      return AdminResponse::Error(400, "bad window; expected milliseconds");
    }
    std::ostringstream out;
    out << "{\"interval_ms\":" << config_.telemetry_interval_ms << ",\"components\":{";
    bool first = true;
    for (size_t fe = 0; fe < fes_.size(); ++fe) {
      if (Fe(fe) == nullptr) {
        continue;  // removed replica
      }
      const std::string fragment =
          Fe(fe)->DescribeTimeSeriesJson(metric, component, window_ms, fe == 0);
      if (fragment.empty()) {
        continue;
      }
      out << (first ? "" : ",") << fragment;
      first = false;
    }
    out << "}}";
    return AdminResponse::Json(out.str());
  });

  admin_->Route("GET", "/cluster/health", [this](const HttpRequest&, const std::string&) {
    // One merged verdict: the worst watchdog status across the FE replicas
    // (each of which already folds its own loops and the mirrored back-end
    // telemetry into its view), plus every replica's detailed snapshot.
    HealthStatus worst = HealthStatus::kOk;
    std::ostringstream fes;
    bool first = true;
    for (size_t fe = 0; fe < fes_.size(); ++fe) {
      if (Fe(fe) == nullptr) {
        continue;
      }
      const HealthStatus status = Fe(fe)->health_status();
      if (static_cast<int>(status) > static_cast<int>(worst)) {
        worst = status;
      }
      fes << (first ? "" : ",") << Fe(fe)->DescribeHealthJson();
      first = false;
    }
    std::ostringstream out;
    out << "{\"status\":\"" << HealthStatusName(worst)
        << "\",\"telemetry_interval_ms\":" << config_.telemetry_interval_ms
        << ",\"frontends\":[" << fes.str() << "]}";
    return AdminResponse::Json(out.str());
  });

  admin_->Route("POST", "/slowlog", [this](const HttpRequest& request, const std::string&) {
    // Runtime-tunable slow-request threshold (the POST /loglevel pattern: one
    // relaxed atomic the request paths read per response). 0 disables.
    // Note: handed-off connections latch their timing decision at adoption,
    // so raising the threshold from 0 applies to connections adopted after
    // the change (docs/ADMIN_API.md).
    int64_t threshold_us = 0;
    if (!ParseSlowlogBody(request.body, &threshold_us)) {
      return AdminResponse::Error(
          400, "body must be empty, a microsecond count, or {\"threshold_us\":N}");
    }
    tracer_->set_slow_threshold_us(threshold_us);
    LARD_LOG(WARNING) << "admin: slow-request threshold set to " << threshold_us << "us";
    return AdminResponse::Json("{\"slow_threshold_us\":" + std::to_string(threshold_us) + "}");
  });

  admin_->Route("POST", "/idletimeout", [this](const HttpRequest& request, const std::string&) {
    // Runtime-tunable front-end keep-alive deadline. Body: empty or 0 to
    // disable reaping, a bare millisecond count, "idle_timeout_ms=N" or
    // {"idle_timeout_ms":N}. Applies on each connection's next arm/rearm.
    int64_t timeout_ms = 0;
    if (!ParseKeyedNonNegativeInt(request.body, "idle_timeout_ms", &timeout_ms)) {
      return AdminResponse::Error(
          400, "body must be empty, a millisecond count, or {\"idle_timeout_ms\":N}");
    }
    Fe(0)->set_idle_timeout_ms(timeout_ms);
    // The whole tier switches; the setter is one relaxed atomic store, but
    // routing through each replica's loop keeps the removed-replica check
    // race-free (the /policy fan-out pattern).
    for (size_t fe = 1; fe < fes_.size(); ++fe) {
      if (Fe(fe) == nullptr) {
        continue;
      }
      // lard-lint: allow(liveness-guard) Stop() joins every FE loop before ~Cluster,
      // so a posted task can never outlive `this`.
      FeLoop(fe)->Post([this, fe, timeout_ms]() {
        if (FrontEnd* frontend = FeFromReplicaLoop(fe)) {
          frontend->set_idle_timeout_ms(timeout_ms);
        }
      });
    }
    LARD_LOG(WARNING) << "admin: front-end idle timeout set to " << timeout_ms << "ms";
    return AdminResponse::Json("{\"idle_timeout_ms\":" + std::to_string(timeout_ms) + "}");
  });

  admin_->Route("POST", "/loglevel", [](const HttpRequest& request, const std::string&) {
    LogSeverity level = LogSeverity::kInfo;
    if (!ParseLogSeverity(request.body, &level)) {
      return AdminResponse::Error(400, "unknown level; use debug|info|warning|error");
    }
    SetMinLogSeverity(level);
    LARD_LOG(WARNING) << "admin: log level set to " << LogSeverityName(level);
    return AdminResponse::Json("{\"level\":\"" + std::string(LogSeverityName(level)) + "\"}");
  });

  admin_->Route("POST", "/policy", [this](const HttpRequest& request, const std::string&) {
    // Trim so `curl -d "wrr"` and a trailing newline both work.
    const std::string name = Trim(request.body);
    if (!Fe(0)->SetPolicyByName(name)) {
      return AdminResponse::Error(
          400, "unknown policy; registered: " + PolicyRegistry::Global().NamesCsv());
    }
    // The whole tier switches (replica 0 already validated the name).
    // Fire-and-forget: blocking this loop on a peer loop could deadlock
    // with a racing Stop(), and nothing here needs the replicas' results.
    for (size_t fe = 1; fe < fes_.size(); ++fe) {
      if (Fe(fe) == nullptr) {
        continue;
      }
      // lard-lint: allow(liveness-guard) Stop() joins every FE loop before ~Cluster,
      // so a posted task can never outlive `this`.
      FeLoop(fe)->Post([this, fe, name]() {
        if (FrontEnd* frontend = FeFromReplicaLoop(fe)) {
          (void)frontend->SetPolicyByName(name);
        }
      });
    }
    // Echo the *canonical registered name* (never the raw request body: it is
    // attacker-controlled and must not be spliced into the JSON reply).
    return AdminResponse::Json(
        "{\"policy\":\"" + std::string(Fe(0)->dispatcher().policy().name()) + "\"}");
  });
}

void Cluster::BridgeDispatcherMetrics() {
  // Runs on front-end 0's loop. The dispatchers' decision counters are
  // bridged as gauges on each /metrics render rather than double-counted.
  // With a replicated tier the bridged figures are the tier totals. Each
  // replica's contribution is one coherent copy taken under its dispatcher
  // façade lock (DispatcherCountersSnapshot), so a render never mixes a
  // request's "requests" increment with the pre-handoff value of its
  // "handoffs" — the per-replica counters move together even while that
  // replica's shard loops are mid-decision.
  DispatcherCounters counters;
  size_t open_connections = 0;
  for (size_t fe = 0; fe < fes_.size(); ++fe) {
    if (Fe(fe) == nullptr) {
      continue;  // removed replica: its loops are stopped, counters gone
    }
    size_t open = 0;
    const DispatcherCounters part = Fe(fe)->DispatcherCountersSnapshot(&open);
    counters.requests += part.requests;
    counters.handoffs += part.handoffs;
    counters.forwards += part.forwards;
    counters.local_serves += part.local_serves;
    counters.migrations += part.migrations;
    counters.relays += part.relays;
    counters.nodes_removed += part.nodes_removed;
    counters.orphaned_connections += part.orphaned_connections;
    counters.reassignments += part.reassignments;
    counters.failure_reassignments += part.failure_reassignments;
    open_connections += open;
  }
  metrics_.Gauge("lard_dispatcher_requests")->Set(static_cast<double>(counters.requests));
  metrics_.Gauge("lard_dispatcher_handoffs")->Set(static_cast<double>(counters.handoffs));
  metrics_.Gauge("lard_dispatcher_forwards")->Set(static_cast<double>(counters.forwards));
  metrics_.Gauge("lard_dispatcher_local_serves")->Set(static_cast<double>(counters.local_serves));
  metrics_.Gauge("lard_dispatcher_migrations")->Set(static_cast<double>(counters.migrations));
  metrics_.Gauge("lard_dispatcher_relays")->Set(static_cast<double>(counters.relays));
  metrics_.Gauge("lard_dispatcher_open_connections")
      ->Set(static_cast<double>(open_connections));
  metrics_.Gauge("lard_dispatcher_nodes_removed")
      ->Set(static_cast<double>(counters.nodes_removed));
  metrics_.Gauge("lard_dispatcher_orphaned_connections")
      ->Set(static_cast<double>(counters.orphaned_connections));
  metrics_.Gauge("lard_dispatcher_reassignments")
      ->Set(static_cast<double>(counters.reassignments));
  metrics_.Gauge("lard_dispatcher_failure_reassignments")
      ->Set(static_cast<double>(counters.failure_reassignments));
}

NodeId Cluster::AddNode(double weight) {
  // Membership operations are serialized on front-end 0's loop thread
  // (inline when an admin handler calls us there), so concurrent joins
  // cannot interleave id allocation across the replicas. nodes_mutex_ is
  // held only around the backend bring-up (which posts exclusively to the
  // *node's own* fresh loop) and released before fanning out to the other
  // front-end loops — those may be blocked on the mutex inside
  // OnNodeRemoved, and waiting on them while holding it would deadlock.
  NodeId node_id = kInvalidNode;
  RunOnLoop(FeLoop(0), [this, weight, &node_id]() {
    NodeId fresh_id = kInvalidNode;
    Node* fresh = nullptr;
    std::vector<UniqueFd> fe_ends;
    {
      MutexLock lock(&nodes_mutex_);
      if (stopped_) {
        return;
      }
      fresh_id = static_cast<NodeId>(nodes_.size());
      if (!StartBackend(fresh_id, &fe_ends).ok()) {
        return;
      }
      fresh = nodes_.back().get();
      fresh->weight = weight;

      // Lateral mesh: the new node learns every live peer; every live peer
      // learns the new node.
      std::vector<uint16_t> lateral_ports;
      for (const auto& node : nodes_) {
        lateral_ports.push_back(node->lateral_port);
      }
      RunOnLoop(fresh->loop.get(),
                [fresh, &lateral_ports]() { fresh->server->ConnectPeers(lateral_ports); });
      for (NodeId peer = 0; peer < fresh_id; ++peer) {
        Node* node = nodes_[static_cast<size_t>(peer)].get();
        if (node->stopped) {
          continue;
        }
        RunOnLoop(node->loop.get(), [node, fresh_id, port = fresh->lateral_port]() {
          node->server->AddPeer(fresh_id, port);
        });
      }
    }

    // Every front-end replica registers the node — same id on all of them:
    // joins are serialized here, ids are never reused, and each replica's
    // loop runs its membership posts in order. Replica 0 registers inline
    // (we are on its loop); the rest are fire-and-forget like the other
    // fan-outs (a blocking wait could deadlock with a racing Stop()).
    const uint16_t lateral_port = fresh->lateral_port;
    const NodeId assigned = Fe(0)->AddNode(std::move(fe_ends[0]), lateral_port, weight);
    LARD_CHECK(assigned == fresh_id);
    for (size_t fe = 1; fe < fes_.size(); ++fe) {
      if (Fe(fe) == nullptr) {
        continue;  // removed replica: StartBackend left its fd slot empty
      }
      auto fd = std::make_shared<UniqueFd>(std::move(fe_ends[fe]));
      // lard-lint: allow(liveness-guard) Stop() joins every FE loop before ~Cluster,
      // so a posted task can never outlive `this`.
      FeLoop(fe)->Post([this, fe, fd, fresh_id, weight, lateral_port]() {
        FrontEnd* frontend = FeFromReplicaLoop(fe);
        if (frontend == nullptr) {
          return;  // replica removed while the post was in flight
        }
        const NodeId replica_assigned = frontend->AddNode(std::move(*fd), lateral_port, weight);
        LARD_CHECK(replica_assigned == fresh_id) << "front-end replicas diverged on a join";
      });
    }
    node_id = fresh_id;
  });
  return node_id;
}

bool Cluster::DrainNode(NodeId node) {
  bool ok = false;
  RunOnLoop(FeLoop(0), [this, node, &ok]() {
    ok = Fe(0)->DrainNode(node);
    // Fire-and-forget to the other replicas (see the /policy fan-out): the
    // caller's answer is replica 0's, and a blocking wait here could
    // deadlock with a racing Stop().
    for (size_t fe = 1; fe < fes_.size(); ++fe) {
      if (Fe(fe) == nullptr) {
        continue;
      }
      // lard-lint: allow(liveness-guard) Stop() joins every FE loop before ~Cluster,
      // so a posted task can never outlive `this`.
      FeLoop(fe)->Post([this, fe, node]() {
        if (FrontEnd* frontend = FeFromReplicaLoop(fe)) {
          (void)frontend->DrainNode(node);
        }
      });
    }
  });
  return ok;
}

void Cluster::StopNodeLocked(NodeId node, bool destroy_server) {
  Node* target = nodes_[static_cast<size_t>(node)].get();
  if (target->stopped) {
    return;
  }
  target->stopped = true;
  if (destroy_server) {
    // Tear the server down on its own loop first so fds unregister cleanly
    // and its clients see EOF instead of silence.
    RunOnLoop(target->loop.get(), [target]() { target->server.reset(); });
  }
  target->loop->Stop();
  if (target->thread.joinable()) {
    target->thread.join();
  }
}

void Cluster::OnNodeRemoved(NodeId node) {
  // Some front-end replica's loop thread: that replica has torn its control
  // session down. The node's loop may only stop once *every* replica has
  // let go — an early teardown would reset connections the other replicas
  // still route.
  MutexLock lock(&nodes_mutex_);
  if (node < 0 || static_cast<size_t>(node) >= nodes_.size() || stopped_) {
    return;
  }
  const int acks = ++removal_acks_[node];
  if (acks < LiveFeCountLocked()) {
    return;
  }
  StopNodeLocked(node, /*destroy_server=*/true);
}

FrontEnd* Cluster::FeFromReplicaLoop(size_t fe) const {
  MutexLock lock(&nodes_mutex_);
  return Fe(fe);
}

int Cluster::LiveFeCountLocked() const {
  int live = 0;
  for (const auto& replica : fes_) {
    if (replica->frontend != nullptr) {
      ++live;
    }
  }
  return live;
}

bool Cluster::RemoveNode(NodeId node) {
  bool ok = false;
  // Teardown of the node's thread happens via OnNodeRemoved once every
  // front-end finishes its (possibly deferred, graceful) removal.
  RunOnLoop(FeLoop(0), [this, node, &ok]() {
    ok = Fe(0)->RemoveNode(node);
    for (size_t fe = 1; fe < fes_.size(); ++fe) {
      if (Fe(fe) == nullptr) {
        continue;
      }
      // lard-lint: allow(liveness-guard) Stop() joins every FE loop before ~Cluster,
      // so a posted task can never outlive `this`.
      FeLoop(fe)->Post([this, fe, node]() {
        if (FrontEnd* frontend = FeFromReplicaLoop(fe)) {
          (void)frontend->RemoveNode(node);
        }
      });
    }
  });
  return ok;
}

bool Cluster::KillNode(NodeId node) {
  bool ok = false;
  RunOnLoop(FeLoop(0), [this, node, &ok]() {
    MutexLock lock(&nodes_mutex_);
    if (node < 0 || static_cast<size_t>(node) >= nodes_.size() ||
        nodes_[static_cast<size_t>(node)]->stopped) {
      return;
    }
    // No front-end notification, no fd teardown: the node simply goes silent
    // (its control sessions and client sockets stay open but unserviced), so
    // detection must come from every replica's heartbeat timeout.
    StopNodeLocked(node, /*destroy_server=*/false);
    LARD_LOG(WARNING) << "cluster: node " << node << " killed (silent crash)";
    ok = true;
  });
  return ok;
}

int Cluster::AddFrontEnd() {
  // Serialized on replica 0's loop like the other membership verbs: fes_
  // mutations happen on that thread (and under nodes_mutex_), so readers on
  // the admin/control plane never race the push_back.
  int fe_id = -1;
  RunOnLoop(FeLoop(0), [this, &fe_id]() {
    struct NodeInfo {
      bool live = false;
      uint16_t lateral_port = 0;
      double weight = 1.0;
    };
    std::vector<NodeInfo> node_info;
    std::vector<UniqueFd> control_fds;  // fe-side ends, parallel to node_info
    FeReplica* raw = nullptr;
    int id = -1;
    {
      MutexLock lock(&nodes_mutex_);
      if (!started_ || stopped_) {
        return;
      }
      id = static_cast<int>(fes_.size());
      auto replica = std::make_unique<FeReplica>();
      replica->loops = std::make_unique<EventLoopGroup>(config_.fe_loops);
      FrontEndConfig fe_config;
      fe_config.num_nodes = 0;  // nodes join below, one AddNode per live slot
      fe_config.fe_id = id;
      fe_config.num_frontends = id + 1;
      fe_config.gossip_interval_ms = config_.gossip_interval_ms;
      fe_config.policy = config_.policy;
      fe_config.policy_name = config_.policy_name;
      fe_config.mechanism = config_.mechanism;
      fe_config.params = config_.params;
      fe_config.virtual_cache_bytes = config_.backend_cache_bytes;
      fe_config.listen_port = 0;  // ephemeral; see ports()
      fe_config.heartbeat_timeout_ms = config_.heartbeat_timeout_ms;
      fe_config.retire_grace_ms = config_.retire_grace_ms;
      fe_config.lateral_timeout_ms = config_.lateral_timeout_ms;
      fe_config.replay_enabled = config_.replay_enabled;
      fe_config.replay_journal = config_.replay_journal;
      fe_config.idempotent_methods = config_.idempotent_methods;
      fe_config.metrics = &metrics_;
      fe_config.tracer = tracer_.get();
      fe_config.telemetry_interval_ms = config_.telemetry_interval_ms;
      fe_config.slo_rules = config_.slo_rules;
      // A replica added after a runtime POST /idletimeout joins with the
      // tier's current deadline, not the boot-time one.
      fe_config.idle_timeout_ms =
          fes_.empty() || Fe(0) == nullptr ? config_.idle_timeout_ms : Fe(0)->idle_timeout_ms();
      replica->frontend =
          std::make_unique<FrontEnd>(fe_config, replica->loops.get(), &store_.catalog());
      replica->frontend->set_on_node_removed([this](NodeId node) { OnNodeRemoved(node); });
      if (config_.profile_loops) {
        replica->loops->EnableProfiling(&metrics_, "fe" + std::to_string(id));
      }
      replica->loops->Start();
      raw = replica.get();
      fes_.push_back(std::move(replica));

      // Back-end side of the control sessions: one pair per live node,
      // attached on the node's own loop (the AddNode pattern — backend
      // loops never take nodes_mutex_, so posting under it cannot
      // deadlock, and the lock keeps StopNodeLocked from racing us).
      for (size_t n = 0; n < nodes_.size(); ++n) {
        Node* node = nodes_[n].get();
        NodeInfo info;
        info.live = !node->stopped && node->server != nullptr;
        info.lateral_port = node->lateral_port;
        info.weight = node->weight;
        if (info.live) {
          auto pair = UnixPair();
          if (!pair.ok()) {
            info.live = false;
            control_fds.emplace_back();
          } else {
            control_fds.push_back(std::move(pair.value().first));
            auto be_end = std::make_shared<UniqueFd>(std::move(pair.value().second));
            RunOnLoop(node->loop.get(), [node, id, be_end]() {
              node->server->AttachFrontEnd(id, std::move(*be_end));
            });
          }
        } else {
          control_fds.emplace_back();
        }
        node_info.push_back(info);
      }
    }

    // Bring the replica up on its own control-plane loop, outside
    // nodes_mutex_ (its loop may call back into OnNodeRemoved, which takes
    // the lock). Node slots must register in id order: dead slots burn an
    // id so every replica agrees on the numbering.
    FrontEnd* fe = raw->frontend.get();
    auto fds = std::make_shared<std::vector<UniqueFd>>(std::move(control_fds));
    RunOnLoop(raw->loops->loop(0), [fe, fds, &node_info]() {
      fe->Start({});
      for (size_t n = 0; n < node_info.size(); ++n) {
        if (node_info[n].live) {
          const NodeId assigned = fe->AddNode(std::move((*fds)[n]), node_info[n].lateral_port,
                                              node_info[n].weight);
          LARD_CHECK(assigned == static_cast<NodeId>(n)) << "joining front-end diverged";
        } else {
          fe->BurnNodeSlot();
        }
      }
    });

    // Gossip mesh: pairwise channels to every surviving replica — but only
    // when the tier was born replicated. A tier started with one front-end
    // has no mesh on replica 0 (MeshEnabled is fixed at construction), so a
    // late joiner there runs meshless: correct, just without remote-load
    // sharing. Documented limitation of runtime join.
    if (config_.num_frontends > 1) {
      for (size_t peer = 0; peer < static_cast<size_t>(id); ++peer) {
        FrontEnd* peer_fe = Fe(peer);  // we are on replica 0's loop: safe
        if (peer_fe == nullptr) {
          continue;  // removed replica
        }
        auto pair = UnixPair();
        if (!pair.ok()) {
          continue;
        }
        auto end_new = std::make_shared<UniqueFd>(std::move(pair.value().first));
        auto end_peer = std::make_shared<UniqueFd>(std::move(pair.value().second));
        RunOnLoop(raw->loops->loop(0), [fe, peer, end_new]() {
          fe->AttachPeer(static_cast<uint32_t>(peer), std::move(*end_new));
        });
        // Fire-and-forget (peer 0 == this loop: Post defers, which is fine).
        FeLoop(peer)->Post([peer_fe, id, end_peer]() {
          peer_fe->AttachPeer(static_cast<uint32_t>(id), std::move(*end_peer));
        });
      }
    }
    LARD_LOG(WARNING) << "cluster: front-end " << id << " joined ("
                      << raw->loops->size() << " loop(s))";
    fe_id = id;
  });
  return fe_id;
}

bool Cluster::RemoveFrontEnd(int fe) {
  if (fe <= 0) {
    return false;  // replica 0 hosts the admin plane and anchors membership
  }
  EventLoopGroup* loops = nullptr;
  {
    MutexLock lock(&nodes_mutex_);
    if (!started_ || stopped_ || static_cast<size_t>(fe) >= fes_.size() ||
        fes_[static_cast<size_t>(fe)]->frontend == nullptr) {
      return false;
    }
    loops = fes_[static_cast<size_t>(fe)]->loops.get();
  }
  // Join the replica's loop threads without holding nodes_mutex_ — they may
  // be blocked acquiring it inside OnNodeRemoved.
  loops->Stop();
  // Destroy the front-end on replica 0's loop and under nodes_mutex_ (the
  // fes_ mutation rule), so control-plane readers see either the live
  // replica or nullptr, never a half-destroyed one. The destructor closes
  // the control sessions (back-ends see EOF and degrade) and the gossip
  // channels (peers drop us from their mesh).
  RunOnLoop(FeLoop(0), [this, fe]() {
    std::unique_ptr<FrontEnd> dead;
    {
      MutexLock lock(&nodes_mutex_);
      dead = std::move(fes_[static_cast<size_t>(fe)]->frontend);
    }
    dead.reset();
    // A node removal in flight may now hold every surviving replica's ack.
    MutexLock lock(&nodes_mutex_);
    const int live = LiveFeCountLocked();
    for (const auto& entry : removal_acks_) {
      if (entry.second >= live && entry.first >= 0 &&
          static_cast<size_t>(entry.first) < nodes_.size()) {
        StopNodeLocked(entry.first, /*destroy_server=*/true);
      }
    }
  });
  LARD_LOG(WARNING) << "cluster: front-end " << fe << " removed";
  return true;
}

void Cluster::Stop() {
  {
    // stopped_ is read under nodes_mutex_ by OnNodeRemoved on the front-end
    // loops; publish it under the same lock (but release before joining the
    // loop threads, which may be blocked acquiring it).
    MutexLock lock(&nodes_mutex_);
    if (!started_ || stopped_) {
      return;
    }
    stopped_ = true;
  }
  // Snapshot the loop groups under the lock (fes_ may have grown via
  // AddFrontEnd since Start), then signal + join outside it — the loop
  // threads may be blocked acquiring nodes_mutex_ inside OnNodeRemoved.
  // stopped_ is already published, so no new replica can appear after the
  // snapshot.
  std::vector<EventLoopGroup*> groups;
  {
    MutexLock lock(&nodes_mutex_);
    groups.reserve(fes_.size());
    for (auto& replica : fes_) {
      groups.push_back(replica->loops.get());
    }
  }
  // Ask every replica's loops to stop first, then join (EventLoopGroup::Stop
  // both signals and joins; signalling all groups up front keeps shutdown
  // near-parallel).
  for (EventLoopGroup* group : groups) {
    for (int i = 0; i < group->size(); ++i) {
      group->loop(i)->Stop();
    }
  }
  for (EventLoopGroup* group : groups) {
    group->Stop();
  }
  MutexLock lock(&nodes_mutex_);
  for (auto& node : nodes_) {
    node->loop->Stop();
    if (node->thread.joinable()) {
      node->thread.join();
    }
  }
}

uint16_t Cluster::port() const {
  // Same lock discipline as ports()/frontend(): tests call this from their
  // own thread while AddFrontEnd may be reallocating fes_ on replica 0's
  // loop (the annotation pass caught the old unlocked read).
  MutexLock lock(&nodes_mutex_);
  LARD_CHECK(!fes_.empty());
  return Fe(0)->port();
}

std::vector<uint16_t> Cluster::ports() const {
  MutexLock lock(&nodes_mutex_);
  std::vector<uint16_t> out;
  out.reserve(fes_.size());
  for (size_t fe = 0; fe < fes_.size(); ++fe) {
    // Removed replicas keep their slot (stable ids) but report port 0.
    out.push_back(Fe(fe) != nullptr ? Fe(fe)->port() : 0);
  }
  return out;
}

void Cluster::InspectReplica(int fe, const std::function<void(const FrontEnd&)>& fn) const {
  // Look the replica up under the lock, but run the closure without it: the
  // target loop may be blocked acquiring nodes_mutex_ inside OnNodeRemoved.
  const FrontEnd* target = nullptr;
  EventLoop* loop = nullptr;
  {
    MutexLock lock(&nodes_mutex_);
    LARD_CHECK(fe >= 0 && static_cast<size_t>(fe) < fes_.size());
    target = Fe(static_cast<size_t>(fe));
    LARD_CHECK(target != nullptr) << "replica " << fe << " was removed";
    loop = FeLoop(static_cast<size_t>(fe));
  }
  RunOnLoop(loop, [target, &fn]() { fn(*target); });
}

int Cluster::num_frontends() const {
  // Same lock discipline as ports()/frontend(): AddFrontEnd grows fes_.
  MutexLock lock(&nodes_mutex_);
  return static_cast<int>(fes_.size());
}

const FrontEnd& Cluster::frontend(int fe) const {
  MutexLock lock(&nodes_mutex_);
  LARD_CHECK(fe >= 0 && static_cast<size_t>(fe) < fes_.size());
  LARD_CHECK(Fe(static_cast<size_t>(fe)) != nullptr) << "replica " << fe << " was removed";
  return *Fe(static_cast<size_t>(fe));
}

uint16_t Cluster::admin_port() const {
  LARD_CHECK(admin_ != nullptr) << "admin server disabled";
  return admin_->port();
}

ClusterSnapshot Cluster::Snapshot() const {
  ClusterSnapshot snapshot;
  MutexLock lock(&nodes_mutex_);
  for (const auto& node : nodes_) {
    if (node->server == nullptr) {
      snapshot.requests_per_node.push_back(0);
      continue;
    }
    const BackendCounters& counters = node->server->counters();
    const uint64_t requests = counters.requests_served.load(std::memory_order_relaxed);
    snapshot.requests_served += requests;
    snapshot.requests_per_node.push_back(requests);
    snapshot.local_hits += counters.local_hits.load(std::memory_order_relaxed);
    snapshot.local_misses += counters.local_misses.load(std::memory_order_relaxed);
    snapshot.lateral_out += counters.lateral_out.load(std::memory_order_relaxed);
    snapshot.bytes_to_clients += counters.bytes_to_clients.load(std::memory_order_relaxed);
    snapshot.not_found += counters.not_found.load(std::memory_order_relaxed);
    snapshot.migrations += counters.handbacks.load(std::memory_order_relaxed);
    snapshot.drain_handbacks += counters.drain_handbacks.load(std::memory_order_relaxed);
    snapshot.replays_adopted += counters.replays_adopted.load(std::memory_order_relaxed);
    snapshot.spliced_responses += counters.spliced_responses.load(std::memory_order_relaxed);
  }
  for (size_t fe = 0; fe < fes_.size(); ++fe) {
    if (Fe(fe) == nullptr) {
      continue;  // removed replica
    }
    const FrontEndCounters& counters = Fe(fe)->counters();
    snapshot.connections += counters.connections_accepted.load();
    snapshot.consults += counters.consults.load();
    snapshot.handoffs += counters.handoffs.load();
    snapshot.rehandoffs += counters.rehandoffs.load();
    snapshot.replays += counters.replays.load();
    snapshot.replay_giveups += counters.replay_giveups.load();
    snapshot.heartbeats += counters.heartbeats.load();
    snapshot.auto_removals += counters.auto_removals.load();
    if (config_.mechanism == Mechanism::kRelayingFrontEnd) {
      // Relay mode serves clients from the front-ends; back-end
      // requests_served counters stay zero (their lateral path served the
      // fetches).
      snapshot.requests_served += counters.relayed_requests.load();
    }
  }
  const uint64_t lookups = snapshot.local_hits + snapshot.local_misses;
  snapshot.cache_hit_rate =
      lookups > 0 ? static_cast<double>(snapshot.local_hits) / static_cast<double>(lookups) : 0.0;
  return snapshot;
}

}  // namespace lard
