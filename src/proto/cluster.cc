#include "src/proto/cluster.h"

#include <cmath>
#include <cstdlib>
#include <future>
#include <sstream>

#include "src/core/policy.h"
#include "src/net/socket.h"
#include "src/util/logging.h"

namespace lard {
namespace {

// Runs `fn` on the loop's thread and waits for completion. Runs inline when
// already on that thread (admin handlers run on the front-end loop and call
// membership operations that target the same loop).
void RunOnLoop(EventLoop* loop, std::function<void()> fn) {
  if (loop->IsInLoopThread()) {
    fn();
    return;
  }
  std::promise<void> done;
  auto future = done.get_future();
  loop->Post([&fn, &done]() {
    fn();
    done.set_value();
  });
  future.wait();
}

std::string Trim(const std::string& text) {
  const size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) {
    return std::string();
  }
  return text.substr(begin, text.find_last_not_of(" \t\r\n") + 1 - begin);
}

// Strict number parse: the whole (trimmed) string must be one finite,
// positive double — trailing garbage ("2,5", "2.5x") is rejected, not
// silently truncated.
bool ParsePositiveNumber(const std::string& text, double* value) {
  const std::string trimmed = Trim(text);
  if (trimmed.empty()) {
    return false;
  }
  char* parse_end = nullptr;
  const double parsed = std::strtod(trimmed.c_str(), &parse_end);
  if (parse_end != trimmed.c_str() + trimmed.size() || !std::isfinite(parsed) || parsed <= 0.0) {
    return false;
  }
  *value = parsed;
  return true;
}

// Parses the optional capacity weight of a POST /nodes/add body. Accepts an
// empty body (weight 1.0), a bare number ("2.5"), a form pair ("weight=2.5")
// or a tiny JSON object ({"weight":2.5}). Returns false on anything else or
// a non-positive/non-finite weight.
bool ParseWeightBody(const std::string& body, double* weight) {
  *weight = 1.0;
  const std::string trimmed = Trim(body);
  if (trimmed.empty()) {
    return true;  // empty body: default weight
  }
  if (trimmed.front() == '{') {
    // {"weight": <number>} and nothing else.
    if (trimmed.back() != '}') {
      return false;
    }
    std::string inner = Trim(trimmed.substr(1, trimmed.size() - 2));
    static constexpr char kKey[] = "\"weight\"";
    if (inner.compare(0, sizeof(kKey) - 1, kKey) != 0) {
      return false;
    }
    inner = Trim(inner.substr(sizeof(kKey) - 1));
    if (inner.empty() || inner.front() != ':') {
      return false;
    }
    return ParsePositiveNumber(inner.substr(1), weight);
  }
  const size_t equals = trimmed.find('=');
  if (equals != std::string::npos) {
    // weight=<number> and nothing else.
    if (Trim(trimmed.substr(0, equals)) != "weight") {
      return false;
    }
    return ParsePositiveNumber(trimmed.substr(equals + 1), weight);
  }
  return ParsePositiveNumber(trimmed, weight);
}

}  // namespace

// One back-end node: loop thread + server. Declaration order matters: the
// loop must outlive the server (whose teardown unregisters fds).
struct Cluster::Node {
  std::unique_ptr<EventLoop> loop;
  std::unique_ptr<BackendServer> server;
  std::thread thread;
  uint16_t lateral_port = 0;
  bool stopped = false;  // loop stopped (removed or killed)
};

Cluster::Cluster(const ClusterConfig& config, const TargetCatalog* catalog)
    : config_(config), store_(catalog) {
  LARD_CHECK(config_.num_nodes > 0);
}

Cluster::~Cluster() { Stop(); }

Status Cluster::StartBackend(NodeId node_id, UniqueFd* fe_end) {
  auto pair = UnixPair();
  if (!pair.ok()) {
    return pair.status();
  }
  *fe_end = std::move(pair.value().first);
  UniqueFd be_end = std::move(pair.value().second);

  auto node = std::make_unique<Node>();
  node->loop = std::make_unique<EventLoop>();
  BackendConfig backend_config;
  backend_config.node_id = node_id;
  backend_config.num_nodes = node_id + 1;
  backend_config.cache_bytes = config_.backend_cache_bytes;
  backend_config.disk_costs = config_.disk_costs;
  backend_config.disk_time_scale = config_.disk_time_scale;
  backend_config.idle_close_ms = config_.idle_close_ms;
  backend_config.heartbeat_interval_ms = config_.heartbeat_interval_ms;
  backend_config.metrics = &metrics_;
  node->server = std::make_unique<BackendServer>(backend_config, node->loop.get(), &store_);
  node->thread = std::thread([loop = node->loop.get()]() { loop->Run(); });
  Node* raw = node.get();
  LARD_CHECK(static_cast<size_t>(node_id) == nodes_.size());
  nodes_.push_back(std::move(node));
  RunOnLoop(raw->loop.get(), [raw, fd = &be_end]() { raw->server->Start(std::move(*fd)); });
  raw->lateral_port = raw->server->lateral_port();
  return Status::Ok();
}

Status Cluster::Start() {
  LARD_CHECK(!started_);
  started_ = true;

  std::lock_guard<std::mutex> lock(nodes_mutex_);

  // Back-ends, each with its control-session socketpair.
  std::vector<UniqueFd> fe_ends;
  for (int i = 0; i < config_.num_nodes; ++i) {
    UniqueFd fe_end;
    Status status = StartBackend(i, &fe_end);
    if (!status.ok()) {
      return status;
    }
    fe_ends.push_back(std::move(fe_end));
  }

  // Lateral mesh.
  std::vector<uint16_t> lateral_ports;
  for (const auto& node : nodes_) {
    lateral_ports.push_back(node->lateral_port);
  }
  for (const auto& node : nodes_) {
    RunOnLoop(node->loop.get(),
              [&node, &lateral_ports]() { node->server->ConnectPeers(lateral_ports); });
  }

  // Front-end.
  fe_loop_ = std::make_unique<EventLoop>();
  FrontEndConfig fe_config;
  fe_config.num_nodes = config_.num_nodes;
  fe_config.policy = config_.policy;
  fe_config.policy_name = config_.policy_name;
  fe_config.node_weights = config_.node_weights;
  fe_config.mechanism = config_.mechanism;
  fe_config.params = config_.params;
  fe_config.virtual_cache_bytes = config_.backend_cache_bytes;
  fe_config.listen_port = config_.listen_port;
  fe_config.heartbeat_timeout_ms = config_.heartbeat_timeout_ms;
  fe_config.retire_grace_ms = config_.retire_grace_ms;
  fe_config.metrics = &metrics_;
  frontend_ = std::make_unique<FrontEnd>(fe_config, fe_loop_.get(), &store_.catalog());
  // Node teardown follows the front-end's removal decision (which may be
  // deferred past a graceful retire), not the admin call.
  frontend_->set_on_node_removed([this](NodeId node) { OnNodeRemoved(node); });
  fe_thread_ = std::thread([loop = fe_loop_.get()]() { loop->Run(); });
  RunOnLoop(fe_loop_.get(), [this, &fe_ends, &lateral_ports]() {
    frontend_->Start(std::move(fe_ends));
    if (config_.mechanism == Mechanism::kRelayingFrontEnd) {
      frontend_->ConnectBackends(lateral_ports);
    }
  });

  // Admin plane, on the front-end's loop (handlers run where the dispatcher
  // lives).
  if (config_.enable_admin) {
    admin_ = std::make_unique<AdminServer>(fe_loop_.get(), &metrics_);
    RegisterAdminRoutes();
    RunOnLoop(fe_loop_.get(), [this]() { admin_->Start(config_.admin_port); });
  }
  return Status::Ok();
}

void Cluster::RegisterAdminRoutes() {
  admin_->set_before_metrics([this]() { BridgeDispatcherMetrics(); });

  admin_->Route("GET", "/nodes", [this](const HttpRequest&, const std::string&) {
    return AdminResponse::Json(frontend_->DescribeNodesJson());
  });

  admin_->Route("POST", "/nodes/add", [this](const HttpRequest& request, const std::string&) {
    double weight = 1.0;
    if (!ParseWeightBody(request.body, &weight)) {
      return AdminResponse::Error(
          400, "body must be empty or carry a positive weight (e.g. {\"weight\":2})");
    }
    const NodeId node = AddNode(weight);
    if (node == kInvalidNode) {
      return AdminResponse::Error(500, "failed to start node");
    }
    std::ostringstream out;
    out << "{\"id\":" << node << ",\"weight\":" << weight << "}";
    return AdminResponse::Json(out.str());
  });

  admin_->RoutePrefix("POST", "/nodes/", [this](const HttpRequest&, const std::string& tail) {
    // tail: "<id>/drain" | "<id>/remove" | "<id>/kill".
    const size_t slash = tail.find('/');
    if (slash == std::string::npos) {
      return AdminResponse::Error(400, "expected /nodes/<id>/<verb>");
    }
    NodeId node = kInvalidNode;
    try {
      node = static_cast<NodeId>(std::stol(tail.substr(0, slash)));
    } catch (...) {
      return AdminResponse::Error(400, "bad node id");
    }
    const std::string verb = tail.substr(slash + 1);
    bool ok = false;
    if (verb == "drain") {
      ok = DrainNode(node);
    } else if (verb == "remove") {
      ok = RemoveNode(node);
    } else if (verb == "kill") {
      ok = KillNode(node);
    } else {
      return AdminResponse::Error(400, "unknown verb: " + verb);
    }
    if (!ok) {
      return AdminResponse::Error(409, verb + " refused for node " +
                                           std::to_string(node));
    }
    return AdminResponse::Json("{\"id\":" + std::to_string(node) + ",\"action\":\"" + verb +
                               "\"}");
  });

  admin_->Route("POST", "/policy", [this](const HttpRequest& request, const std::string&) {
    // Trim so `curl -d "wrr"` and a trailing newline both work.
    const std::string name = Trim(request.body);
    if (!frontend_->SetPolicyByName(name)) {
      return AdminResponse::Error(
          400, "unknown policy; registered: " + PolicyRegistry::Global().NamesCsv());
    }
    // Echo the *canonical registered name* (never the raw request body: it is
    // attacker-controlled and must not be spliced into the JSON reply).
    return AdminResponse::Json(
        "{\"policy\":\"" + std::string(frontend_->dispatcher().policy().name()) + "\"}");
  });
}

void Cluster::BridgeDispatcherMetrics() {
  // Runs on the front-end loop (the dispatcher's thread). The dispatcher's
  // decision counters are plain uint64s, so they are bridged as gauges on
  // each /metrics render rather than double-counted.
  const DispatcherCounters& counters = frontend_->dispatcher().counters();
  metrics_.Gauge("lard_dispatcher_requests")->Set(static_cast<double>(counters.requests));
  metrics_.Gauge("lard_dispatcher_handoffs")->Set(static_cast<double>(counters.handoffs));
  metrics_.Gauge("lard_dispatcher_forwards")->Set(static_cast<double>(counters.forwards));
  metrics_.Gauge("lard_dispatcher_local_serves")->Set(static_cast<double>(counters.local_serves));
  metrics_.Gauge("lard_dispatcher_migrations")->Set(static_cast<double>(counters.migrations));
  metrics_.Gauge("lard_dispatcher_relays")->Set(static_cast<double>(counters.relays));
  metrics_.Gauge("lard_dispatcher_open_connections")
      ->Set(static_cast<double>(frontend_->dispatcher().open_connections()));
  metrics_.Gauge("lard_dispatcher_nodes_removed")
      ->Set(static_cast<double>(counters.nodes_removed));
  metrics_.Gauge("lard_dispatcher_orphaned_connections")
      ->Set(static_cast<double>(counters.orphaned_connections));
  metrics_.Gauge("lard_dispatcher_reassignments")
      ->Set(static_cast<double>(counters.reassignments));
}

NodeId Cluster::AddNode(double weight) {
  // The whole membership operation runs on the front-end loop thread (inline
  // when an admin handler calls us there). nodes_mutex_ is then only ever
  // taken either on that thread or by readers that never wait on it
  // (Snapshot, post-join Stop) — holding it across a cross-thread
  // RunOnLoop(fe_loop_) here could deadlock with an admin-driven membership
  // operation blocking on the mutex from the loop itself.
  NodeId node_id = kInvalidNode;
  RunOnLoop(fe_loop_.get(), [this, weight, &node_id]() {
    std::lock_guard<std::mutex> lock(nodes_mutex_);
    if (stopped_) {
      return;
    }
    const NodeId fresh_id = static_cast<NodeId>(nodes_.size());
    UniqueFd fe_end;
    if (!StartBackend(fresh_id, &fe_end).ok()) {
      return;
    }
    Node* fresh = nodes_.back().get();

    // Lateral mesh: the new node learns every live peer; every live peer
    // learns the new node.
    std::vector<uint16_t> lateral_ports;
    for (const auto& node : nodes_) {
      lateral_ports.push_back(node->lateral_port);
    }
    RunOnLoop(fresh->loop.get(),
              [fresh, &lateral_ports]() { fresh->server->ConnectPeers(lateral_ports); });
    for (NodeId peer = 0; peer < fresh_id; ++peer) {
      Node* node = nodes_[static_cast<size_t>(peer)].get();
      if (node->stopped) {
        continue;
      }
      RunOnLoop(node->loop.get(), [node, fresh_id, port = fresh->lateral_port]() {
        node->server->AddPeer(fresh_id, port);
      });
    }

    const NodeId assigned = frontend_->AddNode(std::move(fe_end), fresh->lateral_port, weight);
    LARD_CHECK(assigned == fresh_id);
    node_id = fresh_id;
  });
  return node_id;
}

bool Cluster::DrainNode(NodeId node) {
  bool ok = false;
  RunOnLoop(fe_loop_.get(), [this, node, &ok]() { ok = frontend_->DrainNode(node); });
  return ok;
}

void Cluster::StopNodeLocked(NodeId node, bool destroy_server) {
  Node* target = nodes_[static_cast<size_t>(node)].get();
  if (target->stopped) {
    return;
  }
  target->stopped = true;
  if (destroy_server) {
    // Tear the server down on its own loop first so fds unregister cleanly
    // and its clients see EOF instead of silence.
    RunOnLoop(target->loop.get(), [target]() { target->server.reset(); });
  }
  target->loop->Stop();
  if (target->thread.joinable()) {
    target->thread.join();
  }
}

void Cluster::OnNodeRemoved(NodeId node) {
  // Front-end loop thread. The FE has already torn the control session down;
  // now the node's loop can stop and its server be destroyed.
  std::lock_guard<std::mutex> lock(nodes_mutex_);
  if (node < 0 || static_cast<size_t>(node) >= nodes_.size() || stopped_) {
    return;
  }
  StopNodeLocked(node, /*destroy_server=*/true);
}

bool Cluster::RemoveNode(NodeId node) {
  bool ok = false;
  // Teardown of the node's thread happens via OnNodeRemoved once the
  // front-end finishes the (possibly deferred, graceful) removal.
  RunOnLoop(fe_loop_.get(), [this, node, &ok]() { ok = frontend_->RemoveNode(node); });
  return ok;
}

bool Cluster::KillNode(NodeId node) {
  bool ok = false;
  RunOnLoop(fe_loop_.get(), [this, node, &ok]() {
    std::lock_guard<std::mutex> lock(nodes_mutex_);
    if (node < 0 || static_cast<size_t>(node) >= nodes_.size() ||
        nodes_[static_cast<size_t>(node)]->stopped) {
      return;
    }
    // No front-end notification, no fd teardown: the node simply goes silent
    // (its control session and client sockets stay open but unserviced), so
    // detection must come from the heartbeat timeout.
    StopNodeLocked(node, /*destroy_server=*/false);
    LARD_LOG(WARNING) << "cluster: node " << node << " killed (silent crash)";
    ok = true;
  });
  return ok;
}

void Cluster::Stop() {
  {
    // stopped_ is read under nodes_mutex_ by OnNodeRemoved on the front-end
    // loop; publish it under the same lock (but release before joining the
    // loop threads, which may be blocked acquiring it).
    std::lock_guard<std::mutex> lock(nodes_mutex_);
    if (!started_ || stopped_) {
      return;
    }
    stopped_ = true;
  }
  if (fe_loop_ != nullptr) {
    fe_loop_->Stop();
  }
  if (fe_thread_.joinable()) {
    fe_thread_.join();
  }
  std::lock_guard<std::mutex> lock(nodes_mutex_);
  for (auto& node : nodes_) {
    node->loop->Stop();
    if (node->thread.joinable()) {
      node->thread.join();
    }
  }
}

uint16_t Cluster::port() const {
  LARD_CHECK(frontend_ != nullptr);
  return frontend_->port();
}

uint16_t Cluster::admin_port() const {
  LARD_CHECK(admin_ != nullptr) << "admin server disabled";
  return admin_->port();
}

ClusterSnapshot Cluster::Snapshot() const {
  ClusterSnapshot snapshot;
  std::lock_guard<std::mutex> lock(nodes_mutex_);
  for (const auto& node : nodes_) {
    if (node->server == nullptr) {
      snapshot.requests_per_node.push_back(0);
      continue;
    }
    const BackendCounters& counters = node->server->counters();
    const uint64_t requests = counters.requests_served.load(std::memory_order_relaxed);
    snapshot.requests_served += requests;
    snapshot.requests_per_node.push_back(requests);
    snapshot.local_hits += counters.local_hits.load(std::memory_order_relaxed);
    snapshot.local_misses += counters.local_misses.load(std::memory_order_relaxed);
    snapshot.lateral_out += counters.lateral_out.load(std::memory_order_relaxed);
    snapshot.bytes_to_clients += counters.bytes_to_clients.load(std::memory_order_relaxed);
    snapshot.not_found += counters.not_found.load(std::memory_order_relaxed);
    snapshot.migrations += counters.handbacks.load(std::memory_order_relaxed);
    snapshot.drain_handbacks += counters.drain_handbacks.load(std::memory_order_relaxed);
  }
  if (frontend_ != nullptr) {
    snapshot.connections = frontend_->counters().connections_accepted.load();
    snapshot.consults = frontend_->counters().consults.load();
    snapshot.handoffs = frontend_->counters().handoffs.load();
    snapshot.rehandoffs = frontend_->counters().rehandoffs.load();
    snapshot.heartbeats = frontend_->counters().heartbeats.load();
    snapshot.auto_removals = frontend_->counters().auto_removals.load();
    if (config_.mechanism == Mechanism::kRelayingFrontEnd) {
      // Relay mode serves clients from the front-end; back-end
      // requests_served counters stay zero (their lateral path served the
      // fetches).
      snapshot.requests_served += frontend_->counters().relayed_requests.load();
    }
  }
  const uint64_t lookups = snapshot.local_hits + snapshot.local_misses;
  snapshot.cache_hit_rate =
      lookups > 0 ? static_cast<double>(snapshot.local_hits) / static_cast<double>(lookups) : 0.0;
  return snapshot;
}

}  // namespace lard
