#include "src/proto/load_generator.h"

#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <random>
#include <thread>

#include "src/http/response_parser.h"
#include "src/net/socket.h"
#include "src/proto/content_store.h"
#include "src/util/logging.h"
#include "src/util/mutex.h"

namespace lard {
namespace {

int64_t NowMs() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

// Per-worker tallies, merged under a mutex at the end.
struct WorkerStats {
  uint64_t sessions = 0;
  uint64_t requests = 0;
  uint64_t responses_ok = 0;
  uint64_t responses_bad = 0;
  uint64_t transport_errors = 0;
  uint64_t bytes_received = 0;
  StreamingStats batch_latency_ms;
  PercentileTracker batch_latency_p;
  std::vector<LatencySample> samples;  // only when config.record_latencies
  StreamingStats start_lag_ms;         // open-loop mode: schedule slippage
  double max_start_lag_ms = 0.0;
  uint64_t late_sessions = 0;
};

// The open-loop arrival schedule: cumulative Poisson instants (exponential
// inter-arrivals at `rps`), fixed before any worker starts so a slow cluster
// cannot stretch it (that is the open- vs closed-loop distinction).
std::vector<double> BuildArrivalSchedule(size_t count, double rps, uint64_t seed) {
  std::vector<double> arrivals_ms(count, 0.0);
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> gap_ms(rps / 1000.0);
  double t = 0.0;
  for (size_t i = 0; i < count; ++i) {
    t += gap_ms(rng);
    arrivals_ms[i] = t;
  }
  return arrivals_ms;
}

// Blocking read of `count` pipelined responses.
bool ReadResponses(int fd, size_t count, ResponseParser* parser,
                   std::vector<HttpResponse>* responses) {
  responses->clear();
  char buf[64 * 1024];
  while (responses->size() < count) {
    // lard-lint: allow(blocking-call) the load generator is a deliberately
    // blocking client running on its own worker threads, not an event loop.
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (parser->Feed(std::string_view(buf, static_cast<size_t>(n)), responses) ==
          ResponseParser::State::kError) {
        return false;
      }
      continue;
    }
    if (n == 0) {
      return false;  // premature EOF
    }
    if (errno == EINTR) {
      continue;
    }
    return false;
  }
  return true;
}

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;
  }
  return true;
}

void ApplyRecvTimeout(int fd, int64_t timeout_ms) {
  if (timeout_ms <= 0) {
    return;
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

class Worker {
 public:
  Worker(const LoadGeneratorConfig* config, const Trace* trace, int64_t load_start_ms)
      : config_(config), trace_(trace), load_start_ms_(load_start_ms) {}

  void RunSession(const TraceSession& session, size_t session_index, WorkerStats* stats) {
    port_ = config_->ports.empty() ? config_->port
                                   : config_->ports[session_index % config_->ports.size()];
    if (config_->http10) {
      RunHttp10Session(session, stats);
    } else {
      RunPhttpSession(session, stats);
    }
    ++stats->sessions;
  }

 private:
  bool Verify(const HttpResponse& response, TargetId target, WorkerStats* stats) const {
    const Target& entry = trace_->catalog().Get(target);
    stats->bytes_received += response.body.size();
    if (response.status != 200 || response.body.size() != entry.size_bytes) {
      return false;
    }
    if (!config_->verify_bodies) {
      return true;
    }
    // Prefix check is enough: the body generator embeds path and true size at
    // the front, so a mixed-up response cannot pass.
    std::string header = entry.path + "#" + std::to_string(entry.size_bytes) + "#";
    if (header.size() > entry.size_bytes) {
      header.resize(entry.size_bytes);
    }
    return response.body.compare(0, header.size(), header) == 0;
  }

  void RecordLatency(int64_t end_ms, double latency_ms, size_t requests,
                     WorkerStats* stats) const {
    stats->batch_latency_ms.Add(latency_ms);
    stats->batch_latency_p.Add(latency_ms);
    if (config_->record_latencies) {
      stats->samples.push_back(
          {end_ms - load_start_ms_, latency_ms, static_cast<uint32_t>(requests)});
    }
  }

  void RunPhttpSession(const TraceSession& session, WorkerStats* stats) {
    auto fd = ConnectTcp(port_);
    if (!fd.ok()) {
      ++stats->transport_errors;
      return;
    }
    (void)SetTcpNoDelay(fd.value().get());
    ApplyRecvTimeout(fd.value().get(), config_->recv_timeout_ms);
    ResponseParser parser;
    std::vector<HttpResponse> responses;
    for (size_t b = 0; b < session.batches.size(); ++b) {
      const TraceBatch& batch = session.batches[b];
      if (batch.targets.empty()) {
        continue;
      }
      std::string out;
      for (const TargetId target : batch.targets) {
        out += "GET " + trace_->catalog().Get(target).path + " HTTP/1.1\r\nHost: cluster\r\n";
        // Last request of the last batch announces connection close.
        if (b + 1 == session.batches.size() && target == batch.targets.back()) {
          out += "Connection: close\r\n";
        }
        out += "\r\n";
      }
      const int64_t start = NowMs();
      stats->requests += batch.targets.size();
      if (!SendAll(fd.value().get(), out) ||
          !ReadResponses(fd.value().get(), batch.targets.size(), &parser, &responses)) {
        stats->transport_errors += 1;
        return;
      }
      const int64_t end = NowMs();
      RecordLatency(end, static_cast<double>(end - start), batch.targets.size(), stats);
      for (size_t i = 0; i < responses.size(); ++i) {
        if (Verify(responses[i], batch.targets[i], stats)) {
          ++stats->responses_ok;
        } else {
          ++stats->responses_bad;
        }
      }
    }
  }

  void RunHttp10Session(const TraceSession& session, WorkerStats* stats) {
    for (const auto& batch : session.batches) {
      for (const TargetId target : batch.targets) {
        auto fd = ConnectTcp(port_);
        if (!fd.ok()) {
          ++stats->transport_errors;
          continue;
        }
        (void)SetTcpNoDelay(fd.value().get());
        ApplyRecvTimeout(fd.value().get(), config_->recv_timeout_ms);
        const std::string out =
            "GET " + trace_->catalog().Get(target).path + " HTTP/1.0\r\nHost: cluster\r\n\r\n";
        ResponseParser parser;
        std::vector<HttpResponse> responses;
        const int64_t start = NowMs();
        ++stats->requests;
        if (!SendAll(fd.value().get(), out) ||
            !ReadResponses(fd.value().get(), 1, &parser, &responses)) {
          ++stats->transport_errors;
          continue;
        }
        const int64_t end = NowMs();
        RecordLatency(end, static_cast<double>(end - start), 1, stats);
        if (Verify(responses[0], target, stats)) {
          ++stats->responses_ok;
        } else {
          ++stats->responses_bad;
        }
      }
    }
  }

  const LoadGeneratorConfig* config_;
  const Trace* trace_;
  int64_t load_start_ms_ = 0;
  uint16_t port_ = 0;  // this session's front-end
};

}  // namespace

LoadResult RunLoad(const LoadGeneratorConfig& config, const Trace& trace) {
  LARD_CHECK(config.port != 0 || !config.ports.empty());
  for (const uint16_t port : config.ports) {
    LARD_CHECK(port != 0) << "front-end port list contains an unbound port";
  }
  LARD_CHECK(config.num_clients > 0);

  const size_t session_limit =
      config.max_sessions < 0
          ? trace.sessions().size()
          : std::min<size_t>(trace.sessions().size(), static_cast<size_t>(config.max_sessions));

  std::atomic<size_t> next_session{0};
  std::atomic<bool> time_up{false};
  const bool open_loop = config.open_loop_rps > 0.0;
  const std::vector<double> arrivals_ms =
      open_loop ? BuildArrivalSchedule(session_limit, config.open_loop_rps, config.open_loop_seed)
                : std::vector<double>();
  const auto open_loop_epoch = std::chrono::steady_clock::now();
  const int64_t start_ms = NowMs();

  Mutex merge_mutex;
  WorkerStats merged;
  StreamingStats merged_latency;
  PercentileTracker merged_p;

  auto worker_fn = [&]() {
    Worker worker(&config, &trace, start_ms);
    WorkerStats stats;
    while (!time_up.load(std::memory_order_relaxed)) {
      const size_t index = next_session.fetch_add(1, std::memory_order_relaxed);
      if (index >= session_limit) {
        break;
      }
      if (open_loop) {
        const auto due = open_loop_epoch + std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(arrivals_ms[index]));
        // lard-lint: allow(blocking-call) deliberate pacing on a client thread.
        std::this_thread::sleep_until(due);
        const double lag_ms =
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - due)
                .count();
        stats.start_lag_ms.Add(lag_ms);
        stats.max_start_lag_ms = std::max(stats.max_start_lag_ms, lag_ms);
        if (lag_ms > 1.0) {
          ++stats.late_sessions;
        }
      }
      worker.RunSession(trace.sessions()[index], index, &stats);
      if (config.time_limit_ms > 0 && NowMs() - start_ms > config.time_limit_ms) {
        time_up.store(true, std::memory_order_relaxed);
      }
    }
    MutexLock lock(&merge_mutex);
    merged.sessions += stats.sessions;
    merged.requests += stats.requests;
    merged.responses_ok += stats.responses_ok;
    merged.responses_bad += stats.responses_bad;
    merged.transport_errors += stats.transport_errors;
    merged.bytes_received += stats.bytes_received;
    merged_latency.Merge(stats.batch_latency_ms);
    merged.start_lag_ms.Merge(stats.start_lag_ms);
    merged.max_start_lag_ms = std::max(merged.max_start_lag_ms, stats.max_start_lag_ms);
    merged.late_sessions += stats.late_sessions;
    merged.samples.insert(merged.samples.end(), stats.samples.begin(), stats.samples.end());
    if (stats.batch_latency_p.count() > 0) {
      // Cross-worker p95 is summarized as the median of per-worker p95s
      // (workers see statistically identical session streams).
      merged_p.Add(stats.batch_latency_p.Percentile(95.0));
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(config.num_clients));
  for (int i = 0; i < config.num_clients; ++i) {
    threads.emplace_back(worker_fn);
  }
  for (auto& thread : threads) {
    thread.join();
  }

  LoadResult result;
  result.sessions = merged.sessions;
  result.requests = merged.requests;
  result.responses_ok = merged.responses_ok;
  result.responses_bad = merged.responses_bad;
  result.transport_errors = merged.transport_errors;
  result.bytes_received = merged.bytes_received;
  result.wall_seconds = static_cast<double>(NowMs() - start_ms) / 1000.0;
  if (result.wall_seconds > 0.0) {
    result.throughput_rps = static_cast<double>(result.responses_ok + result.responses_bad) /
                            result.wall_seconds;
    result.throughput_mbps =
        8.0 * static_cast<double>(result.bytes_received) / 1e6 / result.wall_seconds;
  }
  result.mean_batch_latency_ms = merged_latency.mean();
  result.p95_batch_latency_ms = merged_p.Percentile(50.0);  // median of workers' p95s
  result.latency_samples = std::move(merged.samples);
  if (open_loop) {
    result.offered_rps = config.open_loop_rps;
    result.mean_start_lag_ms = merged.start_lag_ms.mean();
    result.max_start_lag_ms = merged.max_start_lag_ms;
    result.late_sessions = merged.late_sessions;
  }
  return result;
}

}  // namespace lard
