#include "src/proto/backend_server.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <time.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/http/tagging.h"
#include "src/net/socket.h"
#include "src/util/logging.h"

namespace lard {
namespace {
constexpr int64_t kHousekeepingPeriodMs = 100;
}  // namespace

BackendServer::BackendServer(const BackendConfig& config, EventLoop* loop,
                             const ContentStore* store)
    : config_(config), loop_(loop), store_(store), cache_(config.cache_bytes) {
  LARD_CHECK(loop_ != nullptr);
  LARD_CHECK(store_ != nullptr);
  LARD_CHECK(config_.node_id >= 0 && config_.node_id < config_.num_nodes);
  tracer_ = config_.tracer;
  if (tracer_ != nullptr) {
    trace_ring_ = tracer_->Ring("be" + std::to_string(config_.node_id));
  }
}

BackendServer::~BackendServer() {
  // First: deferred tasks and the housekeeping timer become no-ops instead
  // of touching freed state (the loop may keep running after an in-place
  // teardown, and drains posted tasks one final time at shutdown).
  alive_.Invalidate();
}

int64_t BackendServer::NowMs() const {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

void BackendServer::Start(UniqueFd control_fd) {
  disk_ = std::make_unique<DiskGate>(loop_, config_.disk_costs, config_.disk_time_scale);

  if (config_.metrics != nullptr) {
    const NodeId id = config_.node_id;
    metric_requests_ =
        config_.metrics->Counter(MetricsRegistry::WithNode("lard_backend_requests_total", id));
    metric_hits_ =
        config_.metrics->Counter(MetricsRegistry::WithNode("lard_backend_cache_hits_total", id));
    metric_misses_ =
        config_.metrics->Counter(MetricsRegistry::WithNode("lard_backend_cache_misses_total", id));
    metric_lateral_ =
        config_.metrics->Counter(MetricsRegistry::WithNode("lard_backend_lateral_out_total", id));
    metric_heartbeats_ =
        config_.metrics->Counter(MetricsRegistry::WithNode("lard_backend_heartbeats_total", id));
    metric_open_conns_ =
        config_.metrics->Gauge(MetricsRegistry::WithNode("lard_backend_open_connections", id));
    metric_idle_closes_ =
        config_.metrics->Counter(MetricsRegistry::WithNode("lard_backend_idle_closes_total", id));
  }

  if (config_.telemetry_interval_ms > 0) {
    // The per-request latency histogram is gated on telemetry (not on the
    // shared registry alone) so a telemetry-off cluster pays nothing for it.
    if (config_.metrics != nullptr) {
      metric_request_us_ = config_.metrics->Histogram(
          MetricsRegistry::WithNode("lard_backend_request_us", config_.node_id));
    }
    TimeSeriesConfig series_config;
    series_config.interval_ms = static_cast<int>(config_.telemetry_interval_ms);
    telemetry_ = std::make_unique<TimeSeriesStore>(series_config);
    // Series order here is the wire order of every kTelemetry row.
    telemetry_names_ = {"request_rate", "hit_ratio", "latency_p50_us", "latency_p95_us",
                        "latency_p99_us", "disk_queue", "open_conns", "lateral_rate",
                        "wakeup_p99_us"};
    for (const std::string& name : telemetry_names_) {
      telemetry_->AddSeries(name);
    }
    loop_->ScheduleAfterMs(config_.telemetry_interval_ms,
                           alive_.Guard([this]() { TelemetryTick(); }));
  }

  AttachFrontEnd(0, std::move(control_fd));

  auto listener = ListenTcp(0, &lateral_port_);
  LARD_CHECK(listener.ok()) << listener.status().ToString();
  lateral_listener_ = std::move(listener.value());
  LARD_CHECK_OK(SetNonBlocking(lateral_listener_.get(), true));
  loop_->Register(lateral_listener_.get(), EPOLLIN,
                  [this](uint32_t events) { OnLateralAccept(events); });

  // Housekeeping: disk-queue reports to the dispatcher + idle-connection
  // sweep, every 100 ms (the paper conveys disk queue lengths over the
  // control sessions). Guarded: the timer must die with the server, not the
  // loop.
  loop_->ScheduleAfterMs(kHousekeepingPeriodMs, alive_.Guard([this]() { Housekeeping(); }));
}

void BackendServer::AttachFrontEnd(int fe_id, UniqueFd control_fd) {
  LARD_CHECK(fe_id >= 0);
  if (static_cast<size_t>(fe_id) >= controls_.size()) {
    controls_.resize(static_cast<size_t>(fe_id) + 1);
  }
  LARD_CHECK_OK(SetNonBlocking(control_fd.get(), true));
  auto channel = std::make_unique<FramedChannel>(loop_, std::move(control_fd));
  channel->set_on_message([this, fe_id](uint8_t type, std::string payload, UniqueFd fd) {
    OnControlMessage(fe_id, type, std::move(payload), std::move(fd));
  });
  channel->set_on_close([this, fe_id]() { OnFrontEndLost(fe_id); });
  channel->Start();
  controls_[static_cast<size_t>(fe_id)] = std::move(channel);
}

FramedChannel* BackendServer::FeChannel(int fe) {
  if (fe < 0 || static_cast<size_t>(fe) >= controls_.size()) {
    return nullptr;
  }
  FramedChannel* channel = controls_[static_cast<size_t>(fe)].get();
  return channel != nullptr && channel->open() ? channel : nullptr;
}

void BackendServer::OnFrontEndLost(int fe) {
  LARD_LOG(WARNING) << "backend " << config_.node_id << ": control session to front-end " << fe
                    << " lost";
  // FE leave: its consults will never be answered, so its connections flip
  // to autonomous local service. Directives pair with requests positionally,
  // so the unanswerable in-flight consult's paths get local directives
  // first (those requests are older), then the unconsulted backlog.
  for (auto& [id, conn] : conns_) {
    if (conn->fe != fe || conn->closed || conn->autonomous) {
      continue;
    }
    conn->autonomous = true;
    conn->consult_outstanding = false;
    for (std::string& path : conn->consult_inflight) {
      RequestDirective directive;
      directive.path = std::move(path);
      conn->directives.push_back(std::move(directive));
    }
    conn->consult_inflight.clear();
    for (std::string& path : conn->consult_backlog) {
      RequestDirective directive;
      directive.path = std::move(path);
      conn->directives.push_back(std::move(directive));
    }
    conn->consult_backlog.clear();
    // Deferred: we may be inside the dying channel's callback stack.
    loop_->Post(alive_.Guard([this, id = conn->id]() {
      auto it = conns_.find(id);
      if (it != conns_.end()) {
        ProcessNext(it->second.get());
      }
    }));
  }
}

void BackendServer::Housekeeping() {
  bool any_fe = false;
  for (size_t fe = 0; fe < controls_.size(); ++fe) {
    FramedChannel* channel = FeChannel(static_cast<int>(fe));
    if (channel != nullptr) {
      channel->Send(static_cast<uint8_t>(ControlMsg::kDiskReport),
                    EncodeU32(static_cast<uint32_t>(disk_->queue_length())));
      any_fe = true;
    }
  }
  if (any_fe) {
    MaybeSendHeartbeat();
  }
  // Safety-net journal-progress sweep. Every flush path acks eagerly
  // (WriteResponse's fast path, the EPOLLOUT progress hook, the deferred
  // final-response drain), so this normally observes nothing new — it exists
  // so a missed path degrades replay precision by at most one tick instead
  // of silently forever.
  for (auto& [id, conn] : conns_) {
    if (conn->replay_protected && !conn->closed) {
      MaybeSendReplayAck(conn.get());
    }
  }
  SweepIdleConnections();
  if (metric_open_conns_ != nullptr) {
    metric_open_conns_->Set(static_cast<double>(conns_.size()));
  }
  loop_->ScheduleAfterMs(kHousekeepingPeriodMs, alive_.Guard([this]() { Housekeeping(); }));
}

void BackendServer::MaybeSendHeartbeat() {
  if (config_.heartbeat_interval_ms <= 0) {
    return;
  }
  const int64_t now = NowMs();
  if (last_heartbeat_ms_ != 0 && now - last_heartbeat_ms_ < config_.heartbeat_interval_ms) {
    return;
  }
  last_heartbeat_ms_ = now;
  HeartbeatMsg heartbeat;
  heartbeat.seq = ++heartbeat_seq_;
  heartbeat.disk_queue_len = static_cast<uint32_t>(disk_->queue_length());
  heartbeat.active_conns = static_cast<uint32_t>(conns_.size());
  // Every front-end runs its own health tracker; all of them hear the beat.
  for (size_t fe = 0; fe < controls_.size(); ++fe) {
    FramedChannel* channel = FeChannel(static_cast<int>(fe));
    if (channel != nullptr) {
      channel->Send(static_cast<uint8_t>(ControlMsg::kHeartbeat), EncodeHeartbeat(heartbeat));
    }
  }
  if (metric_heartbeats_ != nullptr) {
    metric_heartbeats_->Increment();
  }
}

void BackendServer::TelemetryTick() {
  const int64_t now = NowMs();
  const double dt_seconds = telemetry_last_ms_ == 0
                                ? static_cast<double>(config_.telemetry_interval_ms) / 1000.0
                                : static_cast<double>(now - telemetry_last_ms_) / 1000.0;
  telemetry_last_ms_ = now;

  telemetry_scratch_.clear();
  const double request_rate =
      rate_requests_.Sample(counters_.requests_served.load(std::memory_order_relaxed), dt_seconds);
  telemetry_scratch_.emplace_back(0, request_rate);
  const double hit_rate =
      rate_hits_.Sample(counters_.local_hits.load(std::memory_order_relaxed), dt_seconds);
  const double miss_rate =
      rate_misses_.Sample(counters_.local_misses.load(std::memory_order_relaxed), dt_seconds);
  if (hit_rate + miss_rate > 0.0) {
    telemetry_scratch_.emplace_back(1, hit_rate / (hit_rate + miss_rate));
  }
  if (metric_request_us_ != nullptr) {
    const HistogramWindowSampler::Window window = latency_window_.Sample(*metric_request_us_);
    if (window.count > 0) {
      telemetry_scratch_.emplace_back(2, window.p50);
      telemetry_scratch_.emplace_back(3, window.p95);
      telemetry_scratch_.emplace_back(4, window.p99);
    }
  }
  telemetry_scratch_.emplace_back(5, static_cast<double>(disk_->queue_length()));
  telemetry_scratch_.emplace_back(6, static_cast<double>(conns_.size()));
  telemetry_scratch_.emplace_back(
      7, rate_lateral_.Sample(counters_.lateral_out.load(std::memory_order_relaxed), dt_seconds));
  if (config_.metrics != nullptr) {
    // The loop publishes its health histograms when profiling is on; the
    // find-or-create lookup is harmless (empty window -> no sample) when not.
    MetricHistogram* wakeup = config_.metrics->Histogram(
        "lard_loop_wakeup_delay_us{loop=\"be" + std::to_string(config_.node_id) + "\"}");
    const HistogramWindowSampler::Window window = wakeup_window_.Sample(*wakeup);
    if (window.count > 0) {
      telemetry_scratch_.emplace_back(8, window.p99);
    }
  }
  telemetry_->Append(now, telemetry_scratch_);

  // Ship the row to every attached front-end: absolute state, so a dropped
  // frame only leaves the mirror stale until the next tick.
  TelemetryMsg msg;
  msg.seq = ++telemetry_seq_;
  msg.t_ms = now;
  msg.samples.reserve(telemetry_scratch_.size());
  for (const auto& [idx, value] : telemetry_scratch_) {
    msg.samples.push_back(TelemetrySample{telemetry_names_[static_cast<size_t>(idx)], value});
  }
  const std::string payload = EncodeTelemetry(msg);
  for (size_t fe = 0; fe < controls_.size(); ++fe) {
    FramedChannel* channel = FeChannel(static_cast<int>(fe));
    if (channel != nullptr) {
      channel->Send(static_cast<uint8_t>(ControlMsg::kTelemetry), payload);
    }
  }

  loop_->ScheduleAfterMs(config_.telemetry_interval_ms,
                         alive_.Guard([this]() { TelemetryTick(); }));
}

void BackendServer::ConnectPeers(const std::vector<uint16_t>& ports) {
  LARD_CHECK(ports.size() >= static_cast<size_t>(config_.num_nodes));
  peers_.clear();
  for (size_t node = 0; node < ports.size(); ++node) {
    if (static_cast<NodeId>(node) == config_.node_id) {
      peers_.push_back(nullptr);
    } else {
      peers_.push_back(
          std::make_unique<LateralClient>(loop_, ports[node], config_.lateral_timeout_ms));
    }
  }
}

void BackendServer::AddPeer(NodeId node, uint16_t port) {
  LARD_CHECK(node >= 0);
  if (static_cast<size_t>(node) >= peers_.size()) {
    peers_.resize(static_cast<size_t>(node) + 1);
  }
  if (node != config_.node_id) {
    peers_[static_cast<size_t>(node)] =
        std::make_unique<LateralClient>(loop_, port, config_.lateral_timeout_ms);
  }
}

// ---------------------------------------------------------------------------
// Control session
// ---------------------------------------------------------------------------

void BackendServer::OnControlMessage(int fe, uint8_t type, std::string payload, UniqueFd fd) {
  switch (static_cast<ControlMsg>(type)) {
    case ControlMsg::kHandoff: {
      HandoffMsg msg;
      if (!DecodeHandoff(payload, &msg) || !fd.valid()) {
        LARD_LOG(ERROR) << "backend " << config_.node_id << ": bad handoff message";
        return;
      }
      AdoptConnection(fe, std::move(msg), std::move(fd));
      return;
    }
    case ControlMsg::kReplay: {
      ReplayMsg msg;
      if (!DecodeReplay(payload, &msg) || !fd.valid()) {
        LARD_LOG(ERROR) << "backend " << config_.node_id << ": bad replay message";
        return;
      }
      AdoptReplay(fe, std::move(msg), std::move(fd));
      return;
    }
    case ControlMsg::kFeHello: {
      uint32_t announced = 0;
      if (!DecodeU32(payload, &announced) || announced != static_cast<uint32_t>(fe)) {
        LARD_LOG(ERROR) << "backend " << config_.node_id << ": front-end hello mismatch ("
                        << announced << " on session " << fe << ")";
      }
      return;
    }
    case ControlMsg::kAssignments: {
      AssignmentsMsg msg;
      if (!DecodeAssignments(payload, &msg)) {
        LARD_LOG(ERROR) << "backend " << config_.node_id << ": bad assignments message";
        return;
      }
      OnAssignments(msg);
      return;
    }
    case ControlMsg::kDrain: {
      uint32_t flags = 0;
      (void)DecodeU32(payload, &flags);  // reserved; drain regardless
      draining_ = true;
      LARD_LOG(INFO) << "backend " << config_.node_id
                     << ": draining — giving connections back to the front-end";
      // Sweep every connection: the quiescent ones hand back now, the busy
      // ones when their in-flight batch drains (ProcessNext's idle branch).
      std::vector<ConnId> ids;
      ids.reserve(conns_.size());
      for (const auto& [id, conn] : conns_) {
        ids.push_back(id);
      }
      for (const ConnId id : ids) {
        auto it = conns_.find(id);
        if (it != conns_.end()) {
          ProcessNext(it->second.get());
        }
      }
      return;
    }
    default:
      LARD_LOG(ERROR) << "backend " << config_.node_id << ": unexpected control message type "
                      << static_cast<int>(type);
  }
}

BackendServer::ClientConn* BackendServer::AdoptCommon(int fe, ConnId conn_id, bool autonomous,
                                                      bool replay_protected,
                                                      std::vector<RequestDirective> directives,
                                                      UniqueFd fd) {
  if (conns_.count(conn_id) != 0) {
    // Two front-ends minting from one id space (or a replayed handoff)
    // would corrupt the table; refuse the adoption and reset the client
    // (fd RAII-closes) instead of undefined behaviour.
    LARD_LOG(ERROR) << "backend " << config_.node_id << ": duplicate handoff for connection "
                    << conn_id << " from front-end " << fe;
    return nullptr;
  }
  LARD_CHECK_OK(SetNonBlocking(fd.get(), true));
  (void)SetTcpNoDelay(fd.get());

  auto conn = std::make_unique<ClientConn>();
  ClientConn* raw = conn.get();
  raw->id = conn_id;
  raw->fe = fe;
  raw->autonomous = autonomous;
  raw->replay_protected = replay_protected;
  raw->directives.assign(directives.begin(), directives.end());
  raw->preassigned_remaining = directives.size();
  raw->last_activity_ms = NowMs();
  raw->idle_reported = false;
  raw->conn = std::make_unique<Connection>(loop_, std::move(fd));
  raw->conn->set_on_data(
      [this, id = raw->id](std::string_view data) {
        auto it = conns_.find(id);
        if (it != conns_.end()) {
          OnClientData(it->second.get(), data);
        }
      });
  raw->conn->set_on_close([this, id = raw->id]() {
    auto it = conns_.find(id);
    if (it != conns_.end()) {
      OnClientClosed(it->second.get());
    }
  });
  if (replay_protected) {
    // Ack flush progress the moment the kernel accepts response bytes: an
    // unacked-but-delivered response would be *replayed* after a crash, and
    // the duplicate would shift the client's response pairing.
    raw->conn->set_on_write_progress([this, id = raw->id]() {
      auto it = conns_.find(id);
      if (it != conns_.end()) {
        MaybeSendReplayAck(it->second.get());
      }
    });
  }
  raw->traced = tracer_ != nullptr && tracer_->Sampled(conn_id);
  // Timed when spans or the slow log need it — or when telemetry does: the
  // latency histogram must see every request, not just sampled ones.
  raw->timed = raw->traced ||
               (tracer_ != nullptr && tracer_->enabled() && tracer_->slow_threshold_us() > 0) ||
               metric_request_us_ != nullptr;
  if (raw->traced) {
    RecordSpan(tracer_, trace_ring_, conn_id, raw->trace_seq++, SpanKind::kAdopt,
               config_.node_id, TraceNowUs(), 0, "fe=%d dirs=%zu autonomous=%d", fe,
               raw->directives.size(), autonomous ? 1 : 0);
  }
  counters_.connections_adopted.fetch_add(1, std::memory_order_relaxed);
  conns_.emplace(raw->id, std::move(conn));

  // Register with the loop first (no events can arrive until we return to
  // epoll_wait); the caller then replays the shipped byte stream, which
  // precedes anything still in the socket buffer.
  raw->conn->Start();
  return raw;
}

void BackendServer::AdoptConnection(int fe, HandoffMsg msg, UniqueFd fd) {
  ClientConn* raw = AdoptCommon(fe, msg.conn_id, msg.autonomous, msg.replay_protected,
                                std::move(msg.directives), std::move(fd));
  if (raw == nullptr) {
    return;
  }
  if (!msg.unparsed_input.empty()) {
    OnClientData(raw, msg.unparsed_input);
    if (raw->closed) {
      return;
    }
  }
  ProcessNext(raw);
}

void BackendServer::AdoptReplay(int fe, ReplayMsg msg, UniqueFd fd) {
  ClientConn* raw = AdoptCommon(fe, msg.conn_id, msg.autonomous, /*replay_protected=*/true,
                                std::move(msg.directives), std::move(fd));
  if (raw == nullptr) {
    return;
  }
  raw->splice_remaining = msg.splice_offset;
  raw->splice_origin = msg.origin_node;
  raw->splice_pending = msg.splice_offset > 0;
  if (raw->traced) {
    RecordSpan(tracer_, trace_ring_, raw->id, raw->trace_seq++, SpanKind::kReplay,
               config_.node_id, TraceNowUs(), 0, "origin=%d splice=%llu", msg.origin_node,
               static_cast<unsigned long long>(msg.splice_offset));
  }
  counters_.replays_adopted.fetch_add(1, std::memory_order_relaxed);
  LARD_LOG(INFO) << "backend " << config_.node_id << ": adopted crash-replay connection "
                 << msg.conn_id << " (" << raw->directives.size() << " requests, splice offset "
                 << msg.splice_offset << ")";
  if (!msg.replay_input.empty()) {
    OnClientData(raw, msg.replay_input);
    if (raw->closed) {
      return;
    }
  }
  ProcessNext(raw);
}

void BackendServer::OnAssignments(const AssignmentsMsg& msg) {
  auto it = conns_.find(msg.conn_id);
  if (it == conns_.end()) {
    return;  // connection already closed; dispatcher will hear kConnClosed
  }
  ClientConn* conn = it->second.get();
  conn->consult_outstanding = false;
  conn->consult_inflight.clear();
  for (const auto& directive : msg.directives) {
    conn->directives.push_back(directive);
  }
  MaybeConsult(conn);
  ProcessNext(conn);
}

// ---------------------------------------------------------------------------
// Client connections
// ---------------------------------------------------------------------------

void BackendServer::OnClientData(ClientConn* conn, std::string_view data) {
  if (conn->closed) {
    return;
  }
  conn->last_activity_ms = NowMs();
  std::vector<HttpRequest> requests;
  const RequestParser::State parse_state = conn->parser.Feed(data, &requests);
  if (conn->replay_protected &&
      (!conn->tail_ever_reported || conn->parser.buffered() != conn->tail_reported)) {
    // Ship the consumed-but-incomplete request prefix to the journal: these
    // bytes exist nowhere else once read off the socket, and a crash right
    // now would otherwise leave the surviving node a torn stream.
    FramedChannel* channel = FeChannel(conn->fe);
    if (channel != nullptr) {
      JournalTailMsg tail;
      tail.conn_id = conn->id;
      tail.buffered = conn->parser.buffered();
      channel->Send(static_cast<uint8_t>(ControlMsg::kJournalTail), EncodeJournalTail(tail));
    }
    conn->tail_reported = conn->parser.buffered();
    conn->tail_ever_reported = true;
  }
  if (parse_state == RequestParser::State::kError) {
    HttpRequest bad;
    bad.version = HttpVersion::kHttp10;
    WriteResponse(conn, bad, 400, "bad request\n");
    return;
  }
  if (requests.empty()) {
    return;
  }
  conn->idle_reported = false;
  for (auto& request : requests) {
    if (conn->preassigned_remaining > 0) {
      // Batch-1 request replayed from the handoff payload: its directive
      // already arrived with the handoff message.
      --conn->preassigned_remaining;
    } else {
      if (conn->replay_protected) {
        // The front-end never parsed this request (it arrived pipelined
        // after the handoff): ship it so the crash-replay journal covers it.
        FramedChannel* channel = FeChannel(conn->fe);
        if (channel != nullptr) {
          JournalAppendMsg append;
          append.conn_id = conn->id;
          append.method = request.method;
          append.path = request.path;
          append.request_bytes = request.Serialize();
          channel->Send(static_cast<uint8_t>(ControlMsg::kJournalAppend),
                        EncodeJournalAppend(append));
        }
      }
      if (conn->autonomous) {
        RequestDirective directive;
        directive.path = request.path;
        conn->directives.push_back(std::move(directive));
      } else {
        conn->consult_backlog.push_back(request.path);
      }
    }
    conn->requests.push_back(std::move(request));
  }
  MaybeConsult(conn);
  ProcessNext(conn);
}

void BackendServer::MaybeConsult(ClientConn* conn) {
  if (conn->autonomous || conn->consult_outstanding || conn->consult_backlog.empty() ||
      conn->closed || conn->migrating) {
    return;
  }
  FramedChannel* channel = FeChannel(conn->fe);
  if (channel == nullptr) {
    // Owning front-end gone and the loss sweep has not reached this
    // connection yet: degrade to autonomous local service now.
    conn->autonomous = true;
    for (std::string& path : conn->consult_backlog) {
      RequestDirective directive;
      directive.path = std::move(path);
      conn->directives.push_back(std::move(directive));
    }
    conn->consult_backlog.clear();
    return;
  }
  ConsultMsg msg;
  msg.conn_id = conn->id;
  msg.paths = std::move(conn->consult_backlog);
  msg.disk_queue_len = static_cast<uint32_t>(disk_->queue_length());
  conn->consult_backlog.clear();
  conn->consult_inflight = msg.paths;  // recoverable if the FE dies mid-consult
  conn->consult_outstanding = true;
  channel->Send(static_cast<uint8_t>(ControlMsg::kConsult), EncodeConsult(msg));
}

void BackendServer::ProcessNext(ClientConn* conn) {
  if (conn->serving || conn->closed || conn->migrating) {
    return;
  }
  if (conn->requests.empty() || conn->directives.empty()) {
    // Report idle first so the dispatcher releases the batch load before any
    // drain giveback reassigns the connection.
    ReportIdleIfQuiescent(conn);
    MaybeDrainHandback(conn);
    return;
  }

  if (conn->directives.front().action == DirectiveAction::kMigrate) {
    // Wait for any in-flight consult so the front-end's reply stream for
    // this connection is drained before the state moves.
    if (conn->consult_outstanding) {
      return;
    }
    StartHandback(conn);
    return;
  }

  HttpRequest request = std::move(conn->requests.front());
  conn->requests.pop_front();
  RequestDirective directive = std::move(conn->directives.front());
  conn->directives.pop_front();
  conn->serving = true;
  if (conn->timed) {
    conn->serve_start_us = TraceNowUs();
    conn->serve_cache = '-';
  }

  NodeId peer = kInvalidNode;
  std::string untagged;
  if (directive.action == DirectiveAction::kLateral &&
      ParseTaggedPath(directive.path, &peer, &untagged) && peer != config_.node_id &&
      HasPeer(peer)) {
    LARD_CHECK(untagged == request.path)
        << "directive/request mismatch: " << untagged << " vs " << request.path;
    ServeLateral(conn, request, peer, untagged);
    return;
  }
  ServeLocal(conn, request, directive);
}

void BackendServer::StartHandback(ClientConn* conn) {
  const RequestDirective& head = conn->directives.front();
  if (head.node == config_.node_id || !HasPeer(head.node) || conn->conn == nullptr ||
      !conn->conn->open()) {
    // Degenerate migration (bad target or dying socket): serve locally.
    conn->directives.front().action = DirectiveAction::kLocal;
    ProcessNext(conn);
    return;
  }
  conn->migrating = true;
  if (conn->conn->pending_write_bytes() > 0) {
    conn->conn->set_on_write_drained([this, id = conn->id]() { DoHandback(id); });
    return;
  }
  DoHandback(conn->id);
}

void BackendServer::MaybeDrainHandback(ClientConn* conn) {
  // Quiescent between batches on a draining node: give the connection back
  // to the front-end for reassignment instead of pinning it here. Batch-1
  // directives still waiting for a partial request to complete ride along
  // (the target pairs them with the replayed bytes); anything mid-flight
  // (serve, consult) defers the giveback to the next quiescence.
  if (!draining_ || conn->closed || conn->migrating || conn->serving ||
      !conn->requests.empty() || !conn->consult_backlog.empty() || conn->consult_outstanding) {
    return;
  }
  if (conn->conn == nullptr || !conn->conn->open() || FeChannel(conn->fe) == nullptr) {
    return;
  }
  conn->migrating = true;
  if (conn->conn->pending_write_bytes() > 0) {
    conn->conn->set_on_write_drained([this, id = conn->id]() { DoHandback(id); });
    return;
  }
  DoHandback(conn->id);
}

void BackendServer::DoHandback(ConnId conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return;
  }
  ClientConn* conn = it->second.get();
  if (conn->closed || conn->conn == nullptr || !conn->conn->open()) {
    return;  // client went away while we flushed; normal close path handles it
  }

  const bool migrate = !conn->directives.empty() &&
                       conn->directives.front().action == DirectiveAction::kMigrate;
  HandbackMsg msg;
  msg.conn_id = conn->id;
  if (migrate) {
    LARD_CHECK(conn->requests.size() >= conn->directives.size())
        << "every directive must have a parsed request";
    msg.target_node = conn->directives.front().node;
    // The migrating request is served locally at the target.
    RequestDirective first = conn->directives.front();
    first.action = DirectiveAction::kLocal;
    first.node = kInvalidNode;
    msg.directives.push_back(std::move(first));
    for (size_t i = 1; i < conn->directives.size(); ++i) {
      msg.directives.push_back(conn->directives[i]);
    }
  } else {
    // Drain giveback: no destination — the front-end's dispatcher reassigns.
    // Directives still queued (waiting for a partial request's tail) are
    // forwarded unchanged.
    msg.target_node = kInvalidNode;
    msg.directives.assign(conn->directives.begin(), conn->directives.end());
  }

  // Replay stream: every unserved request re-serialized in order, then the
  // unparsed tail. Requests beyond the directive count were never consulted
  // (their paths sit in consult_backlog, which we drop): the target node
  // re-consults them when it re-parses the stream.
  std::string replay;
  for (const HttpRequest& request : conn->requests) {
    replay += request.Serialize();
  }
  replay += conn->parser.buffered();
  msg.replay_input = std::move(replay);

  FramedChannel* channel = FeChannel(conn->fe);
  if (channel == nullptr) {
    // Owning front-end vanished between the flush and now: nobody can
    // re-place the connection, so keep serving it locally.
    conn->migrating = false;
    if (!conn->directives.empty() &&
        conn->directives.front().action == DirectiveAction::kMigrate) {
      conn->directives.front().action = DirectiveAction::kLocal;
    }
    ProcessNext(conn);
    return;
  }
  Connection::Detached detached = conn->conn->Detach();
  channel->SendWithFd(static_cast<uint8_t>(ControlMsg::kHandback), EncodeHandback(msg),
                      std::move(detached.fd));
  (migrate ? counters_.handbacks : counters_.drain_handbacks)
      .fetch_add(1, std::memory_order_relaxed);

  // State is gone from this node; do NOT notify kConnClosed — the connection
  // lives on at the target. (Deferred: we may be inside a callback.)
  conn->closed = true;
  loop_->Post(alive_.Guard([this, id = conn->id]() { conns_.erase(id); }));
}

void BackendServer::ServeLocal(ClientConn* conn, const HttpRequest& request,
                               const RequestDirective& directive) {
  const TargetId target = store_->Resolve(request.path);
  if (target == kInvalidTarget) {
    counters_.not_found.fetch_add(1, std::memory_order_relaxed);
    WriteResponse(conn, request, 404, "not found\n");
    return;
  }
  const uint64_t size = store_->SizeOf(target);
  if (cache_.Touch(target)) {
    counters_.local_hits.fetch_add(1, std::memory_order_relaxed);
    if (metric_hits_ != nullptr) {
      metric_hits_->Increment();
    }
    conn->serve_cache = 'h';
    WriteResponse(conn, request, 200, store_->BodyFor(target));
    return;
  }
  counters_.local_misses.fetch_add(1, std::memory_order_relaxed);
  if (metric_misses_ != nullptr) {
    metric_misses_->Increment();
  }
  conn->serve_cache = 'm';
  const ConnId id = conn->id;
  const bool cache_after_miss = directive.cache_after_miss;
  const int64_t disk_start_us = conn->traced ? TraceNowUs() : 0;
  const int queued_behind = conn->traced ? disk_->queue_length() : 0;
  // Copy the request: the disk read outlives this stack frame.
  disk_->Read(size, [this, id, target, cache_after_miss, request, disk_start_us,
                     queued_behind]() {
    auto it = conns_.find(id);
    if (it == conns_.end()) {
      return;  // client went away while the disk was busy
    }
    ClientConn* conn = it->second.get();
    if (conn->traced) {
      RecordSpan(tracer_, trace_ring_, id, conn->trace_seq++, SpanKind::kDiskWait,
                 config_.node_id, disk_start_us, TraceNowUs() - disk_start_us, "queued=%d %s",
                 queued_behind, request.path.c_str());
    }
    if (cache_after_miss) {
      cache_.Insert(target, store_->SizeOf(target));
    }
    WriteResponse(conn, request, 200, store_->BodyFor(target));
  });
}

void BackendServer::ServeLateral(ClientConn* conn, const HttpRequest& request, NodeId peer,
                                 const std::string& path) {
  counters_.lateral_out.fetch_add(1, std::memory_order_relaxed);
  if (metric_lateral_ != nullptr) {
    metric_lateral_->Increment();
  }
  LateralClient* client = peers_[static_cast<size_t>(peer)].get();
  LARD_CHECK(client != nullptr) << "no lateral client for node " << peer;
  const ConnId id = conn->id;
  conn->serve_cache = 'l';
  const int64_t lateral_start_us = conn->traced ? TraceNowUs() : 0;
  client->Fetch(path, [this, id, peer, request, lateral_start_us](int status, std::string body) {
    auto it = conns_.find(id);
    if (it == conns_.end()) {
      return;
    }
    ClientConn* conn = it->second.get();
    if (conn->traced) {
      RecordSpan(tracer_, trace_ring_, id, conn->trace_seq++, SpanKind::kLateral,
                 config_.node_id, lateral_start_us, TraceNowUs() - lateral_start_us,
                 "peer=%d status=%d%s", peer, status, status == 0 ? " fallback=local" : "");
    }
    if (status == 200) {
      // Relay without caching locally (NFS-client-caching-disabled semantics:
      // replication stays under LARD's control).
      WriteResponse(conn, request, 200, std::move(body));
      return;
    }
    if (status == 0) {
      // Peer unreachable: degrade to a local serve so the client still gets
      // its document (the paper's NFS path would block instead).
      LARD_LOG(WARNING) << "backend " << config_.node_id
                        << ": lateral fetch failed, serving locally: " << request.path;
      RequestDirective fallback;
      fallback.path = request.path;
      ServeLocal(conn, request, fallback);
      return;
    }
    WriteResponse(conn, request, status, std::move(body));
  });
}

void BackendServer::WriteResponse(ClientConn* conn, const HttpRequest& request, int status,
                                  std::string body) {
  if (conn->closed || conn->conn == nullptr || !conn->conn->open()) {
    // Client vanished mid-service; just advance the pipeline.
    FinishRequest(conn);
    return;
  }
  HttpResponse response;
  response.version = request.version;
  response.status = status;
  response.reason = ReasonPhrase(status);
  // A spliced replay response must be byte-identical to what the crashed
  // node was sending, so it carries the *origin* node's Server token.
  const NodeId identity =
      conn->splice_pending && conn->splice_origin != kInvalidNode ? conn->splice_origin
                                                                  : config_.node_id;
  response.headers.Add("Server", "lard-be" + std::to_string(identity));
  response.headers.Add("Content-Type", "application/octet-stream");
  const bool keep_alive = status != 400 && request.KeepAlive();
  if (!keep_alive) {
    response.headers.Add("Connection", "close");
  }
  response.body = std::move(body);
  counters_.requests_served.fetch_add(1, std::memory_order_relaxed);
  if (metric_requests_ != nullptr) {
    metric_requests_->Increment();
  }
  counters_.bytes_to_clients.fetch_add(response.body.size(), std::memory_order_relaxed);
  std::string serialized = response.Serialize();
  if (conn->splice_pending) {
    conn->splice_pending = false;
    if (conn->splice_remaining >= serialized.size()) {
      // The recorded delivered-prefix exceeds the regenerated response: the
      // streams cannot be reconciled (content changed?). Closing is the only
      // honest option — never emit overlapping or short bytes.
      LARD_LOG(ERROR) << "backend " << config_.node_id << ": replay splice offset "
                      << conn->splice_remaining << " >= regenerated response size "
                      << serialized.size() << " on connection " << conn->id << ", closing";
      CloseClient(conn, /*notify_frontend=*/true);
      return;
    }
    if (conn->splice_remaining > 0) {
      serialized.erase(0, static_cast<size_t>(conn->splice_remaining));
      counters_.spliced_responses.fetch_add(1, std::memory_order_relaxed);
    }
    conn->splice_remaining = 0;
  }
  conn->conn->Write(serialized);
  conn->last_activity_ms = NowMs();
  if (conn->timed && conn->serve_start_us > 0) {
    const int64_t now_us = TraceNowUs();
    const int64_t total_us = now_us - conn->serve_start_us;
    if (metric_request_us_ != nullptr) {
      metric_request_us_->Observe(static_cast<double>(total_us));
    }
    if (conn->traced) {
      RecordSpan(tracer_, trace_ring_, conn->id, conn->trace_seq++, SpanKind::kServe,
                 config_.node_id, conn->serve_start_us, total_us, "status=%d cache=%c %s",
                 status, conn->serve_cache, request.path.c_str());
      RecordSpan(tracer_, trace_ring_, conn->id, conn->trace_seq++, SpanKind::kFlush,
                 config_.node_id, now_us, 0, "bytes=%zu pending=%zu", serialized.size(),
                 conn->conn->pending_write_bytes());
    }
    if (tracer_ != nullptr && tracer_->slow_threshold_us() > 0 &&
        total_us >= tracer_->slow_threshold_us()) {
      // Tail outliers get logged even when the trace was not sampled; the
      // full span tree rides along when it was.
      TraceSpan slow;
      slow.trace_id = conn->id;
      slow.seq = conn->trace_seq;
      slow.kind = SpanKind::kServe;
      slow.node = config_.node_id;
      slow.start_us = conn->serve_start_us;
      slow.duration_us = total_us;
      std::snprintf(slow.detail, sizeof(slow.detail), "status=%d cache=%c %s", status,
                    conn->serve_cache, request.path.c_str());
      tracer_->LogSlow(slow);
    }
    conn->serve_start_us = 0;
  }
  if (conn->replay_protected) {
    // Journal bookkeeping: where (in flushed-byte space) this response ends.
    conn->enqueued_total += serialized.size();
    conn->response_ends.push_back(conn->enqueued_total);
  }

  if (!keep_alive) {
    if (conn->replay_protected && conn->conn->pending_write_bytes() > 0) {
      // Keep the journal armed until the kernel holds the whole final
      // response: kConnClosed makes the front-end drop its retained dup, and
      // a crash between that drop and the flush would lose the response
      // un-replayably. Close (and notify) once the buffer drains.
      conn->conn->set_on_write_drained([this, id = conn->id]() {
        auto it = conns_.find(id);
        if (it == conns_.end()) {
          return;
        }
        ClientConn* drained = it->second.get();
        MaybeSendReplayAck(drained);
        if (drained->conn != nullptr) {
          drained->conn->CloseAfterFlush();
        }
        CloseClient(drained, /*notify_frontend=*/true);
      });
      return;
    }
    conn->conn->CloseAfterFlush();
    CloseClient(conn, /*notify_frontend=*/true);
    return;
  }
  MaybeSendReplayAck(conn);
  FinishRequest(conn);
}

void BackendServer::MaybeSendReplayAck(ClientConn* conn) {
  if (!conn->replay_protected || conn->closed || conn->conn == nullptr) {
    return;
  }
  const uint64_t flushed = conn->conn->bytes_flushed();
  while (!conn->response_ends.empty() && conn->response_ends.front() <= flushed) {
    conn->last_completed_end = conn->response_ends.front();
    conn->response_ends.pop_front();
    ++conn->completed_responses;
  }
  const uint64_t partial = flushed - conn->last_completed_end;
  if (conn->ack_sent && conn->completed_responses == conn->acked_completed &&
      partial == conn->acked_partial) {
    return;  // no news
  }
  FramedChannel* channel = FeChannel(conn->fe);
  if (channel == nullptr) {
    return;
  }
  ReplayAckMsg ack;
  ack.conn_id = conn->id;
  ack.completed = conn->completed_responses;
  ack.partial_bytes = partial;
  channel->Send(static_cast<uint8_t>(ControlMsg::kReplayAck), EncodeReplayAck(ack));
  conn->ack_sent = true;
  conn->acked_completed = conn->completed_responses;
  conn->acked_partial = partial;
}

void BackendServer::FinishRequest(ClientConn* conn) {
  conn->serving = false;
  if (!conn->closed) {
    ProcessNext(conn);
  }
}

void BackendServer::ReportIdleIfQuiescent(ClientConn* conn) {
  if (conn->autonomous || conn->closed || conn->idle_reported || conn->serving ||
      !conn->requests.empty() || !conn->directives.empty() || !conn->consult_backlog.empty() ||
      conn->consult_outstanding) {
    return;
  }
  conn->idle_reported = true;
  FramedChannel* channel = FeChannel(conn->fe);
  if (channel != nullptr) {
    channel->Send(static_cast<uint8_t>(ControlMsg::kIdle), EncodeU64(conn->id));
  }
}

void BackendServer::OnClientClosed(ClientConn* conn) {
  CloseClient(conn, /*notify_frontend=*/true);
}

void BackendServer::CloseClient(ClientConn* conn, bool notify_frontend) {
  if (conn->closed) {
    return;
  }
  conn->closed = true;
  FramedChannel* channel = FeChannel(conn->fe);
  if (notify_frontend && channel != nullptr) {
    channel->Send(static_cast<uint8_t>(ControlMsg::kConnClosed), EncodeU64(conn->id));
  }
  // The Connection may be mid-callback and disk/lateral callbacks may still
  // reference this ClientConn by id, so tear down on the next tick.
  loop_->Post(alive_.Guard([this, id = conn->id]() { conns_.erase(id); }));
}

void BackendServer::SweepIdleConnections() {
  if (config_.idle_close_ms <= 0) {
    return;
  }
  const int64_t now = NowMs();
  std::vector<ClientConn*> idle;
  for (auto& [id, conn] : conns_) {
    if (!conn->closed && !conn->serving && conn->requests.empty() &&
        now - conn->last_activity_ms >= config_.idle_close_ms) {
      idle.push_back(conn.get());
    }
  }
  for (ClientConn* conn : idle) {
    counters_.idle_closes.fetch_add(1, std::memory_order_relaxed);
    if (metric_idle_closes_ != nullptr) {
      metric_idle_closes_->Increment();
    }
    // notify_frontend: the kConnClosed message is what lets the front-end
    // reap its half (dispatcher entry, journal, retained dup).
    CloseClient(conn, /*notify_frontend=*/true);
  }
}

// ---------------------------------------------------------------------------
// Lateral service (peer-facing)
// ---------------------------------------------------------------------------

void BackendServer::OnLateralAccept(uint32_t) {
  while (true) {
    const int fd = ::accept4(lateral_listener_.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      if (errno == EINTR) {
        continue;
      }
      LARD_LOG(ERROR) << "backend " << config_.node_id << ": lateral accept: "
                      << std::strerror(errno);
      return;
    }
    auto lateral = std::make_unique<LateralConn>();
    LateralConn* raw = lateral.get();
    raw->id = next_lateral_id_++;
    (void)SetTcpNoDelay(fd);
    raw->conn = std::make_unique<Connection>(loop_, UniqueFd(fd));
    raw->conn->set_on_data(
        [this, id = raw->id](std::string_view data) { OnLateralData(id, data); });
    raw->conn->set_on_close([this, id = raw->id]() { DestroyLateralConn(id); });
    raw->conn->Start();
    lateral_conns_.emplace(raw->id, std::move(lateral));
  }
}

void BackendServer::OnLateralData(uint64_t lateral_id, std::string_view data) {
  auto it = lateral_conns_.find(lateral_id);
  if (it == lateral_conns_.end()) {
    return;
  }
  LateralConn* conn = it->second.get();
  std::vector<HttpRequest> requests;
  if (conn->parser.Feed(data, &requests) == RequestParser::State::kError) {
    conn->conn->Close();
    DestroyLateralConn(lateral_id);
    return;
  }
  for (auto& request : requests) {
    conn->pending.push_back(std::move(request));
  }
  ProcessNextLateral(lateral_id);
}

void BackendServer::ProcessNextLateral(uint64_t lateral_id) {
  auto it = lateral_conns_.find(lateral_id);
  if (it == lateral_conns_.end()) {
    return;
  }
  LateralConn* conn = it->second.get();
  if (conn->serving || conn->pending.empty()) {
    return;
  }
  const HttpRequest request = std::move(conn->pending.front());
  conn->pending.pop_front();
  conn->serving = true;
  counters_.lateral_in.fetch_add(1, std::memory_order_relaxed);

  auto respond = [this, lateral_id](int status, std::string body) {
    auto it = lateral_conns_.find(lateral_id);
    if (it == lateral_conns_.end()) {
      return;
    }
    LateralConn* conn = it->second.get();
    if (conn->conn != nullptr && conn->conn->open()) {
      HttpResponse response;
      response.version = HttpVersion::kHttp11;
      response.status = status;
      response.reason = ReasonPhrase(status);
      response.body = std::move(body);
      conn->conn->Write(response.Serialize());
    }
    conn->serving = false;
    ProcessNextLateral(lateral_id);
  };

  const TargetId target = store_->Resolve(request.path);
  if (target == kInvalidTarget) {
    respond(404, "not found\n");
    return;
  }
  if (cache_.Touch(target)) {
    counters_.local_hits.fetch_add(1, std::memory_order_relaxed);
    if (metric_hits_ != nullptr) {
      metric_hits_->Increment();
    }
    respond(200, store_->BodyFor(target));
    return;
  }
  counters_.local_misses.fetch_add(1, std::memory_order_relaxed);
  if (metric_misses_ != nullptr) {
    metric_misses_->Increment();
  }
  disk_->Read(store_->SizeOf(target), [this, target, respond]() {
    // This node is the caching node for laterally requested targets: misses
    // populate the cache.
    cache_.Insert(target, store_->SizeOf(target));
    respond(200, store_->BodyFor(target));
  });
}

void BackendServer::DestroyLateralConn(uint64_t lateral_id) {
  auto it = lateral_conns_.find(lateral_id);
  if (it == lateral_conns_.end()) {
    return;
  }
  // May be called from inside the connection's own callback: defer.
  std::shared_ptr<LateralConn> dead(it->second.release());
  lateral_conns_.erase(it);
  loop_->Post([dead]() {});
}

}  // namespace lard
