// In-process prototype cluster harness (Figure 12's testbed in one process):
// wires up one front-end and N back-ends, each on its own event-loop thread,
// connected by unix-socket control sessions, and exposes the front-end's TCP
// port. Used by the integration tests, the examples and the Figure 13 bench.
//
// The harness is also where the control plane becomes operable: it owns the
// shared MetricsRegistry, runs the AdminServer on the front-end's loop, and
// implements the membership verbs the admin API exposes — AddNode (spin up a
// back-end thread and join it), DrainNode, RemoveNode (graceful teardown) and
// KillNode (simulated crash: the node's loop stops dead, heartbeats cease,
// and the front-end's health tracker auto-removes it).
#ifndef SRC_PROTO_CLUSTER_H_
#define SRC_PROTO_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/admin/admin_server.h"
#include "src/core/cluster_types.h"
#include "src/net/event_loop_group.h"
#include "src/core/lard_params.h"
#include "src/obs/slo_watchdog.h"
#include "src/proto/backend_server.h"
#include "src/proto/content_store.h"
#include "src/proto/frontend.h"
#include "src/sim/cost_model.h"
#include "src/trace/trace.h"
#include "src/util/metrics.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"
#include "src/util/tracing.h"

namespace lard {

struct ClusterConfig {
  int num_nodes = 2;
  // Replicated front-end tier: N front-ends, each on its own loop thread
  // with its own listen port (see ports()), its own control session to every
  // back-end, and a pairwise gossip mesh keeping the dispatchers'
  // load/vcache views approximately consistent. 1 = the classic single-FE
  // harness.
  int num_frontends = 1;
  // Reactor-per-core front ends: event loops per FE process. Loop 0 carries
  // the control plane (back-end control sessions, gossip, admin); client
  // connections shard across all loops via per-loop SO_REUSEPORT listeners.
  // 0 = auto: the LARD_FE_LOOPS environment variable when set, else 1 (the
  // classic single-loop front-end, bit-compatible with the old harness).
  int fe_loops = 0;
  int64_t gossip_interval_ms = 50;
  Policy policy = Policy::kExtendedLard;
  // Non-empty: PolicyRegistry name overriding `policy` (plugin policies).
  std::string policy_name;
  // Capacity weight per initial node (padded with 1.0); weighted policies
  // normalize load by weight. Weights describe relative back-end speed —
  // the prototype's processes are really homogeneous, so this mostly
  // exercises the decision plumbing (the simulator models true speed skew).
  std::vector<double> node_weights;
  Mechanism mechanism = Mechanism::kBackEndForwarding;
  LardParams params;
  uint64_t backend_cache_bytes = 32ull * 1024 * 1024;
  DiskCostModel disk_costs;
  // 1.0 = paper-faithful disk latencies; tests compress (e.g. 0.02).
  double disk_time_scale = 1.0;
  int64_t idle_close_ms = 15000;
  // Front-end keep-alive deadline: a shard-owned client connection (accepted
  // but not yet handed off, or relayed) with no bytes in either direction for
  // this long is reaped by its shard's timer wheel. Runtime-tunable via
  // POST /idletimeout; <= 0 disables. The back-end companion for adopted
  // connections is idle_close_ms above.
  int64_t idle_timeout_ms = 30000;
  // Lateral/relay fetch deadline (wedge guard against silently dead peers).
  int64_t lateral_timeout_ms = 2000;
  uint16_t listen_port = 0;  // 0 = ephemeral
  // Control plane.
  bool enable_admin = true;
  uint16_t admin_port = 0;  // 0 = ephemeral (see admin_port() after Start)
  int64_t heartbeat_interval_ms = 200;
  int64_t heartbeat_timeout_ms = 1500;  // <= 0 disables liveness detection
  // Graceful removal: how long a live admin-removed node gets to give its
  // connections back before the hard removal. <= 0 removes immediately.
  int64_t retire_grace_ms = 1000;
  // Crash-transparent request replay (see FrontEndConfig::replay_enabled):
  // journaled idempotent requests of a *killed* node's connections are
  // replayed onto survivors over the retained client sockets.
  bool replay_enabled = true;
  ReplayJournalConfig replay_journal;
  std::vector<std::string> idempotent_methods = {"GET", "HEAD"};
  // Request tracing (src/util/tracing.h): every component records sampled
  // per-request spans into fixed-size rings, drained via GET /trace
  // (?format=chrome for about:tracing / Perfetto).
  bool tracing_enabled = true;
  uint32_t trace_sample_every = 16;  // 1 = trace every connection
  size_t trace_ring_capacity = 2048;
  // Requests slower than this are logged with their span tree (0 disables).
  int64_t slow_request_threshold_us = 0;
  // Publish event-loop health (lard_loop_*{loop="fe0"/"be1"/...} histograms:
  // tick duration, callback runtime, wakeup-to-run latency, queue depth).
  bool profile_loops = true;
  // Telemetry pipeline (src/obs/): every component samples rates, window
  // quantiles and gauges into a fixed-size TimeSeriesStore at this period;
  // back-ends ship each tick to the front-ends (kTelemetry), and the FE SLO
  // watchdog evaluates its rules at the same cadence. <= 0 disables the
  // pipeline (GET /timeseries and /cluster/health go empty).
  int64_t telemetry_interval_ms = 1000;
  // Front-end watchdog rules; empty = the built-in defaults (back-end p99
  // latency, replay storms, giveups, loop wakeup delay, load skew).
  std::vector<SloRule> slo_rules;
};

// Snapshot of the whole cluster's counters.
struct ClusterSnapshot {
  uint64_t requests_served = 0;
  uint64_t local_hits = 0;
  uint64_t local_misses = 0;
  uint64_t lateral_out = 0;
  uint64_t bytes_to_clients = 0;
  uint64_t connections = 0;
  uint64_t consults = 0;
  uint64_t handoffs = 0;
  uint64_t migrations = 0;  // multiple-handoff hand-backs
  uint64_t rehandoffs = 0;  // drain/failure givebacks re-handed-off by the FE
  uint64_t drain_handbacks = 0;  // connections the back-ends gave back while draining
  uint64_t replays = 0;          // crashed-node conns replayed onto survivors
  uint64_t replay_giveups = 0;   // orphans that could not be replayed (clean 502/close)
  uint64_t replays_adopted = 0;  // kReplay adoptions counted at the back-ends
  uint64_t spliced_responses = 0;  // replayed responses emitted with a trimmed prefix
  uint64_t not_found = 0;
  uint64_t heartbeats = 0;
  uint64_t auto_removals = 0;
  double cache_hit_rate = 0.0;
  std::vector<uint64_t> requests_per_node;
};

class Cluster {
 public:
  // `catalog` (document tree) must outlive the cluster.
  Cluster(const ClusterConfig& config, const TargetCatalog* catalog);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Starts all loops and components; returns once the front-end is listening.
  Status Start();
  // Stops all loops and joins the threads. Safe to call twice.
  void Stop();

  // --- membership (any thread; also wired to the admin API) ---

  // Starts a new back-end, joins it to the lateral mesh and registers it
  // with the front-end under the given capacity weight. Returns the new
  // node's id.
  NodeId AddNode(double weight = 1.0);
  // Stops new assignments to `node`; its persistent connections are given
  // back to the front-end and re-handed-off to surviving nodes.
  bool DrainNode(NodeId node);
  // Graceful removal: the node drains and gives its connections back first
  // (bounded by retire_grace_ms); once the front-end finishes the removal the
  // node's loop is shut down and its thread joined.
  bool RemoveNode(NodeId node);
  // Simulated crash: the node's loop stops dead — control session stays
  // open but falls silent, so the front-end must detect the death via
  // missed heartbeats and auto-remove it.
  bool KillNode(NodeId node);

  // Runtime front-end join: spins up a new FE replica (its own
  // EventLoopGroup of fe_loops reactors, ephemeral listen port — see
  // ports()), attaches a control session to every live back-end and joins
  // the gossip mesh. Returns the new replica's id, or -1 if the cluster is
  // stopped. Serialized on replica 0's loop, like the other membership verbs.
  int AddFrontEnd();
  // Runtime front-end leave: stops and joins replica `fe`'s loops, then
  // destroys the front-end — back-ends see control EOF and degrade the
  // session; mesh peers see gossip EOF and drop the peer. The replica slot
  // stays (frontend == nullptr) so ids remain stable. Replica 0 hosts the
  // admin plane and cannot be removed. Returns false if `fe` is invalid,
  // already removed, or 0.
  bool RemoveFrontEnd(int fe);

  // Runs `fn` on replica `fe`'s control-plane loop (loop 0) and waits for
  // it — the thread-safe way for tests/tools to inspect a replica's
  // dispatcher state from outside. `fe` must not have been removed.
  void InspectReplica(int fe, const std::function<void(const FrontEnd&)>& fn) const;

  // Front-end 0's client port (the only one with a single-FE tier).
  uint16_t port() const;
  // Every front-end's client port, for DNS/VIP-style client spraying.
  std::vector<uint16_t> ports() const;
  uint16_t admin_port() const;
  ClusterSnapshot Snapshot() const;
  const ContentStore& store() const { return store_; }
  const FrontEnd& frontend() const { return frontend(0); }
  const FrontEnd& frontend(int fe) const;
  int num_frontends() const;
  MetricsRegistry* metrics() { return &metrics_; }
  Tracer* tracer() { return tracer_.get(); }

 private:
  struct Node;
  // One front-end replica: a group of fe_loops reactors (each on its own
  // thread, owned/joined by the group) + the server. Declaration order
  // matters: the loops must outlive the front-end. After RemoveFrontEnd the
  // slot persists with frontend == nullptr and the loops stopped.
  //
  // Mutation rule: fes_ (and each slot's frontend pointer) is only mutated
  // on replica 0's loop thread *and* under nodes_mutex_. Readers on replica
  // 0's loop need no lock; readers on any other thread take nodes_mutex_.
  struct FeReplica {
    std::unique_ptr<EventLoopGroup> loops;
    std::unique_ptr<FrontEnd> frontend;
  };

  // Replica `fe`'s control-plane loop (loop 0 of its group).
  EventLoop* FeLoop(size_t fe) const { return fes_[fe]->loops->loop(0); }
  FrontEnd* Fe(size_t fe) const { return fes_[fe]->frontend.get(); }
  // Fe(fe) for fan-out closures running on replica fe's own loop: an
  // unlocked fes_ read there would race AddFrontEnd's push_back (replica 0's
  // loop may be reallocating the vector). The returned pointer outlives the
  // closure — a replica is only destroyed after its loops are joined.
  FrontEnd* FeFromReplicaLoop(size_t fe) const LARD_EXCLUDES(nodes_mutex_);
  // Front-ends still present (frontend != nullptr). Caller holds
  // nodes_mutex_ (or runs on replica 0's loop).
  int LiveFeCountLocked() const LARD_REQUIRES(nodes_mutex_);

  // Creates + starts one back-end (loop thread, control session wiring).
  // Returns one fe-side control fd per front-end through *fe_ends. Caller
  // holds nodes_mutex_.
  Status StartBackend(NodeId node_id, std::vector<UniqueFd>* fe_ends)
      LARD_REQUIRES(nodes_mutex_);
  void StopNodeLocked(NodeId node, bool destroy_server) LARD_REQUIRES(nodes_mutex_);
  // Runs on a front-end loop when that replica finishes removing a node
  // (admin remove, retire completion, heartbeat timeout or control EOF).
  // The node's loop thread is torn down once *every* replica has let go.
  void OnNodeRemoved(NodeId node) LARD_EXCLUDES(nodes_mutex_);
  void RegisterAdminRoutes();
  void BridgeDispatcherMetrics();

  ClusterConfig config_;
  ContentStore store_;
  MetricsRegistry metrics_;
  std::unique_ptr<Tracer> tracer_;

  // fes_ follows the hybrid discipline documented on FeReplica (mutations on
  // replica 0's loop AND under nodes_mutex_; replica-0-loop readers
  // lock-free), which a single GUARDED_BY cannot express — the lock-free
  // reads are legal and annotating them away with lock acquisitions would
  // deadlock replica-0-loop closures that run while Start()/AddNode() hold
  // nodes_mutex_. The runtime check is FeFromReplicaLoop + the loop-thread
  // serialization; see docs/CONCURRENCY.md.
  std::vector<std::unique_ptr<FeReplica>> fes_;
  std::unique_ptr<AdminServer> admin_;

  mutable Mutex nodes_mutex_;
  std::vector<std::unique_ptr<Node>> nodes_ LARD_GUARDED_BY(nodes_mutex_);
  // Per-node count of front-ends that completed the node's removal; teardown
  // happens once every *live* front-end acked.
  std::unordered_map<NodeId, int> removal_acks_ LARD_GUARDED_BY(nodes_mutex_);
  bool started_ LARD_GUARDED_BY(nodes_mutex_) = false;
  bool stopped_ LARD_GUARDED_BY(nodes_mutex_) = false;
};

}  // namespace lard

#endif  // SRC_PROTO_CLUSTER_H_
