// In-process prototype cluster harness (Figure 12's testbed in one process):
// wires up one front-end and N back-ends, each on its own event-loop thread,
// connected by unix-socket control sessions, and exposes the front-end's TCP
// port. Used by the integration tests, the examples and the Figure 13 bench.
#ifndef SRC_PROTO_CLUSTER_H_
#define SRC_PROTO_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/cluster_types.h"
#include "src/core/lard_params.h"
#include "src/proto/backend_server.h"
#include "src/proto/content_store.h"
#include "src/proto/frontend.h"
#include "src/sim/cost_model.h"
#include "src/trace/trace.h"
#include "src/util/status.h"

namespace lard {

struct ClusterConfig {
  int num_nodes = 2;
  Policy policy = Policy::kExtendedLard;
  Mechanism mechanism = Mechanism::kBackEndForwarding;
  LardParams params;
  uint64_t backend_cache_bytes = 32ull * 1024 * 1024;
  DiskCostModel disk_costs;
  // 1.0 = paper-faithful disk latencies; tests compress (e.g. 0.02).
  double disk_time_scale = 1.0;
  int64_t idle_close_ms = 15000;
  uint16_t listen_port = 0;  // 0 = ephemeral
};

// Snapshot of the whole cluster's counters.
struct ClusterSnapshot {
  uint64_t requests_served = 0;
  uint64_t local_hits = 0;
  uint64_t local_misses = 0;
  uint64_t lateral_out = 0;
  uint64_t bytes_to_clients = 0;
  uint64_t connections = 0;
  uint64_t consults = 0;
  uint64_t handoffs = 0;
  uint64_t migrations = 0;  // multiple-handoff hand-backs
  uint64_t not_found = 0;
  double cache_hit_rate = 0.0;
  std::vector<uint64_t> requests_per_node;
};

class Cluster {
 public:
  // `catalog` (document tree) must outlive the cluster.
  Cluster(const ClusterConfig& config, const TargetCatalog* catalog);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Starts all loops and components; returns once the front-end is listening.
  Status Start();
  // Stops all loops and joins the threads. Safe to call twice.
  void Stop();

  uint16_t port() const;
  ClusterSnapshot Snapshot() const;
  const ContentStore& store() const { return store_; }

 private:
  struct Node;

  ClusterConfig config_;
  ContentStore store_;

  std::unique_ptr<EventLoop> fe_loop_;
  std::unique_ptr<FrontEnd> frontend_;
  std::thread fe_thread_;

  std::vector<std::unique_ptr<Node>> nodes_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace lard

#endif  // SRC_PROTO_CLUSTER_H_
