#include "src/proto/lateral_client.h"

#include "src/net/socket.h"
#include "src/util/logging.h"

namespace lard {

LateralClient::LateralClient(EventLoop* loop, uint16_t peer_port)
    : loop_(loop), peer_port_(peer_port) {}

bool LateralClient::EnsureConnected() {
  if (conn_ != nullptr && conn_->open()) {
    return true;
  }
  conn_.reset();
  auto fd = ConnectTcp(peer_port_);
  if (!fd.ok()) {
    LARD_LOG(ERROR) << "lateral connect to :" << peer_port_ << " failed: "
                    << fd.status().ToString();
    return false;
  }
  LARD_CHECK_OK(SetNonBlocking(fd.value().get(), true));
  LARD_CHECK_OK(SetTcpNoDelay(fd.value().get()));
  conn_ = std::make_unique<Connection>(loop_, std::move(fd.value()));
  parser_ = ResponseParser();
  conn_->set_on_data([this](std::string_view data) { OnData(data); });
  conn_->set_on_close([this]() { OnClose(); });
  conn_->Start();
  return true;
}

void LateralClient::Fetch(const std::string& path, FetchCallback callback) {
  if (!EnsureConnected()) {
    callback(0, "");
    return;
  }
  ++fetches_issued_;
  pending_.push_back(std::move(callback));
  std::string request = "GET " + path + " HTTP/1.1\r\nHost: lateral\r\n\r\n";
  conn_->Write(request);
}

void LateralClient::OnData(std::string_view data) {
  std::vector<HttpResponse> responses;
  if (parser_.Feed(data, &responses) == ResponseParser::State::kError) {
    LARD_LOG(ERROR) << "lateral peer :" << peer_port_ << " sent garbage";
    conn_->Close();
    OnClose();
    return;
  }
  for (auto& response : responses) {
    LARD_CHECK(!pending_.empty()) << "lateral response without a pending fetch";
    FetchCallback callback = std::move(pending_.front());
    pending_.pop_front();
    callback(response.status, std::move(response.body));
  }
}

void LateralClient::OnClose() {
  // Fail everything in flight; the next Fetch reconnects. The Connection may
  // be calling us from inside its own callback, so its destruction is
  // deferred to the next loop tick.
  std::deque<FetchCallback> failed;
  failed.swap(pending_);
  if (conn_ != nullptr) {
    std::shared_ptr<Connection> dead(conn_.release());
    loop_->Post([dead]() {});
  }
  for (auto& callback : failed) {
    callback(0, "");
  }
}

}  // namespace lard
