#include "src/proto/lateral_client.h"

#include "src/net/socket.h"
#include "src/util/logging.h"

namespace lard {

LateralClient::LateralClient(EventLoop* loop, uint16_t peer_port, int64_t timeout_ms)
    : loop_(loop), peer_port_(peer_port), timeout_ms_(timeout_ms) {}

bool LateralClient::EnsureConnected() {
  if (conn_ != nullptr && conn_->open()) {
    return true;
  }
  conn_.reset();
  auto fd = ConnectTcp(peer_port_);
  if (!fd.ok()) {
    LARD_LOG(ERROR) << "lateral connect to :" << peer_port_ << " failed: "
                    << fd.status().ToString();
    return false;
  }
  LARD_CHECK_OK(SetNonBlocking(fd.value().get(), true));
  LARD_CHECK_OK(SetTcpNoDelay(fd.value().get()));
  conn_ = std::make_unique<Connection>(loop_, std::move(fd.value()));
  parser_ = ResponseParser();
  conn_->set_on_data([this](std::string_view data) { OnData(data); });
  conn_->set_on_close([this]() { OnClose(); });
  conn_->Start();
  return true;
}

void LateralClient::Fetch(const std::string& path, FetchCallback callback) {
  if (!EnsureConnected()) {
    callback(0, "");
    return;
  }
  ++fetches_issued_;
  pending_.push_back(std::move(callback));
  std::string request = "GET " + path + " HTTP/1.1\r\nHost: lateral\r\n\r\n";
  conn_->Write(request);
  if (timeout_ms_ > 0) {
    // Deadline for this fetch: responses are FIFO, so it has been answered
    // iff the completed count passed its issue number by then. A silent peer
    // (killed node whose listener still accepts) fails the pipeline instead
    // of wedging it — and the client connection being served with it.
    loop_->ScheduleAfterMs(timeout_ms_, alive_.Guard([this, expected = fetches_issued_]() {
                             if (fetches_completed_ >= expected) {
                               return;
                             }
                             ++fetches_timed_out_;
                             LARD_LOG(WARNING)
                                 << "lateral peer :" << peer_port_
                                 << " silent for " << timeout_ms_ << "ms, failing "
                                 << pending_.size() << " in-flight fetches";
                             if (conn_ != nullptr) {
                               conn_->Close();
                             }
                             OnClose();
                           }));
  }
}

void LateralClient::OnData(std::string_view data) {
  std::vector<HttpResponse> responses;
  if (parser_.Feed(data, &responses) == ResponseParser::State::kError) {
    LARD_LOG(ERROR) << "lateral peer :" << peer_port_ << " sent garbage";
    conn_->Close();
    OnClose();
    return;
  }
  for (auto& response : responses) {
    LARD_CHECK(!pending_.empty()) << "lateral response without a pending fetch";
    FetchCallback callback = std::move(pending_.front());
    pending_.pop_front();
    ++fetches_completed_;
    callback(response.status, std::move(response.body));
  }
}

void LateralClient::OnClose() {
  // Fail everything in flight; the next Fetch reconnects. The Connection may
  // be calling us from inside its own callback, so its destruction is
  // deferred to the next loop tick.
  std::deque<FetchCallback> failed;
  failed.swap(pending_);
  fetches_completed_ += failed.size();
  if (conn_ != nullptr) {
    std::shared_ptr<Connection> dead(conn_.release());
    loop_->Post([dead]() {});
  }
  for (auto& callback : failed) {
    callback(0, "");
  }
}

}  // namespace lard
