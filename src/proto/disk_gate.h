// Simulated back-end disk for the prototype (DESIGN.md §2): cache misses pass
// through a single-server FCFS queue whose service time follows the same
// seek/rotation/transfer model as the simulator's disk, scaled by
// `time_scale` so tests can compress wall-clock time. Runs entirely on the
// back-end's event loop (timers), so "disk waits" never block the loop.
//
// The queue length (outstanding reads) is the disk-utilization signal the
// back-end reports to the front-end dispatcher.
#ifndef SRC_PROTO_DISK_GATE_H_
#define SRC_PROTO_DISK_GATE_H_

#include <cstdint>
#include <functional>

#include "src/net/event_loop.h"
#include "src/sim/cost_model.h"
#include "src/util/liveness.h"

namespace lard {

class DiskGate {
 public:
  // `loop` must outlive the gate. time_scale 1.0 = paper-faithful latencies
  // (28.5 ms initial); 0.01 = hundredfold compression for tests.
  DiskGate(EventLoop* loop, const DiskCostModel& costs, double time_scale);
  // Pending completion timers become no-ops (their `done` callbacks are
  // dropped): a gate torn down mid-read must not run completions into a
  // destroyed owner.
  ~DiskGate() { alive_.Invalidate(); }

  // Schedules a read of `bytes`; `done` runs on the loop thread when the
  // (simulated) read completes. FCFS: the read starts when all previously
  // submitted reads have finished.
  void Read(uint64_t bytes, std::function<void()> done);

  int queue_length() const { return outstanding_; }
  uint64_t total_reads() const { return total_reads_; }

 private:
  static int64_t NowMs();

  EventLoop* loop_;
  DiskCostModel costs_;
  double time_scale_;
  LivenessToken alive_;
  int outstanding_ = 0;
  uint64_t total_reads_ = 0;
  int64_t busy_until_ms_ = 0;
};

}  // namespace lard

#endif  // SRC_PROTO_DISK_GATE_H_
