// Workload representation shared by the simulator, the prototype load
// generator and the benches.
//
// A trace is a set of *sessions*. A session models one persistent (P-HTTP)
// client connection: an ordered list of *batches*, where a batch is a group
// of pipelined requests the client sends back-to-back (the paper: "Clients
// can pipeline all requests in a batch but have to wait for data from the
// server before requests in the next batch can be sent"). An HTTP/1.0
// workload is the degenerate view where every request is its own
// single-batch, single-request session.
#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/logging.h"

namespace lard {

using TargetId = uint32_t;
inline constexpr TargetId kInvalidTarget = 0xffffffffu;

// One Web document: URL path plus response body size. The paper's "target" is
// "a Web document specified by a URL and any applicable arguments".
struct Target {
  std::string path;
  uint64_t size_bytes = 0;
};

// Interned table of all targets in a workload. TargetIds are dense and stable,
// which lets policies and caches use vectors instead of hash maps.
class TargetCatalog {
 public:
  // Returns the id for `path`, creating it (with `size_bytes`) if new. When
  // the path exists, the stored size wins (web logs occasionally disagree on
  // sizes; first occurrence is authoritative).
  TargetId Intern(const std::string& path, uint64_t size_bytes);

  // Returns the id for `path` or kInvalidTarget.
  TargetId Find(const std::string& path) const;

  const Target& Get(TargetId id) const {
    LARD_CHECK(id < targets_.size());
    return targets_[id];
  }

  size_t size() const { return targets_.size(); }

  // Sum of all target sizes: the workload's total footprint ("database size").
  uint64_t TotalBytes() const;

 private:
  std::vector<Target> targets_;
  std::unordered_map<std::string, TargetId> by_path_;
};

// A group of pipelined requests. `offset_us` is the send time relative to the
// session start, as recorded in (or synthesized into) the trace; closed-loop
// replay uses it only as think time between batches.
struct TraceBatch {
  int64_t offset_us = 0;
  std::vector<TargetId> targets;
};

// One persistent connection worth of requests.
struct TraceSession {
  uint32_t client_id = 0;
  int64_t start_us = 0;
  std::vector<TraceBatch> batches;

  size_t total_requests() const {
    size_t n = 0;
    for (const auto& batch : batches) {
      n += batch.targets.size();
    }
    return n;
  }
};

// A full workload: catalog + sessions ordered by start time.
class Trace {
 public:
  TargetCatalog& catalog() { return catalog_; }
  const TargetCatalog& catalog() const { return catalog_; }

  std::vector<TraceSession>& sessions() { return sessions_; }
  const std::vector<TraceSession>& sessions() const { return sessions_; }

  size_t total_requests() const;
  uint64_t total_response_bytes() const;
  double mean_response_bytes() const;
  double mean_requests_per_session() const;

  // Re-expresses the workload as HTTP/1.0: one connection per request, same
  // order. Session/batch structure is discarded; timestamps are inherited.
  Trace ToHttp10() const;

 private:
  TargetCatalog catalog_;
  std::vector<TraceSession> sessions_;
};

}  // namespace lard

#endif  // SRC_TRACE_TRACE_H_
