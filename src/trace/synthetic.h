// Synthetic Rice-like workload generator.
//
// The paper drives its simulator and prototype with logs from Rice University
// departmental web servers (proprietary, unavailable). This generator is the
// documented substitution (DESIGN.md §2): it synthesizes a static-content
// workload whose aggregate properties match what the paper reports and what
// the cited characterization literature (Arlitt & Williamson; Mogul) says the
// evaluation depends on:
//
//   * Zipf-like document popularity, so a small memory footprint covers most
//     requests but the full working set greatly exceeds a single node cache.
//   * Heavy-tailed sizes (lognormal body, Pareto tail), small mean (~<=13 KB).
//   * Page structure: an HTML document plus its embedded objects, fetched as
//     a burst -> realistic P-HTTP sessions with pipelined batches.
//
// Generation is fully deterministic given the config (seeded Rng).
#ifndef SRC_TRACE_SYNTHETIC_H_
#define SRC_TRACE_SYNTHETIC_H_

#include <cstdint>

#include "src/trace/trace.h"

namespace lard {

struct SyntheticTraceConfig {
  uint64_t seed = 42;

  // Corpus shape. Defaults give ~40k targets / ~1 GB footprint, matching the
  // scale the paper's (garbled) trace-characterization sentence implies.
  int64_t num_pages = 6000;
  double embedded_per_page_mean = 5.5;  // geometric; >=1 html + k objects

  // Popularity across pages.
  double zipf_alpha = 0.9;

  // Sizes. HTML: lognormal. Embedded objects: lognormal body with a Pareto
  // tail mixed in with `tail_probability`.
  double html_lognorm_mu = 8.7;     // e^8.7 ~ 6 KB median
  double html_lognorm_sigma = 0.8;
  double object_lognorm_mu = 8.2;   // ~3.6 KB median
  double object_lognorm_sigma = 1.0;
  double tail_probability = 0.01;
  double tail_pareto_scale = 64.0 * 1024;
  double tail_pareto_alpha = 1.2;
  uint64_t min_size_bytes = 128;
  uint64_t max_size_bytes = 8ull * 1024 * 1024;

  // Session shape.
  int64_t num_sessions = 30000;
  int64_t num_clients = 256;
  double pages_per_session_mean = 2.0;   // geometric, >= 1
  double think_time_mean_s = 4.0;        // between page batches in a session
  double session_interarrival_mean_s = 0.05;

  // When true, the HTML and its embedded objects form two batches (HTML
  // first, objects pipelined after it arrives) exactly as the paper assumes
  // ("additional requests ... normally do not arrive until after the response
  // to the first request is delivered").
  bool pipeline_embedded_objects = true;
};

// Builds the workload. Target paths look like "/page1234/obj7.dat".
Trace GenerateSyntheticTrace(const SyntheticTraceConfig& config);

// Convenience: a small config for unit tests and the quickstart example
// (about 2k targets / 60 MB footprint / 4k sessions).
SyntheticTraceConfig SmallTraceConfig(uint64_t seed = 42);

}  // namespace lard

#endif  // SRC_TRACE_SYNTHETIC_H_
