// Workload characterization, reproducing the paper's in-text trace table:
// number of targets, total footprint, and the memory needed to cover a given
// fraction of all requests (the paper quotes the MB needed for 97/98/99/100%).
#ifndef SRC_TRACE_TRACE_STATS_H_
#define SRC_TRACE_TRACE_STATS_H_

#include <cstdint>
#include <vector>

#include "src/trace/trace.h"

namespace lard {

struct CoveragePoint {
  double request_fraction = 0.0;  // e.g. 0.97
  uint64_t bytes_needed = 0;      // smallest cache holding the hottest targets
                                  // that together absorb that fraction
  size_t targets_needed = 0;
};

struct TraceStats {
  size_t num_targets = 0;
  size_t num_requests = 0;
  size_t num_sessions = 0;
  uint64_t footprint_bytes = 0;        // sum of distinct target sizes
  uint64_t transferred_bytes = 0;      // sum over requests
  double mean_response_bytes = 0.0;
  double mean_requests_per_session = 0.0;
  double mean_batches_per_session = 0.0;
  std::vector<CoveragePoint> coverage;
};

// `fractions` defaults (when empty) to {0.97, 0.98, 0.99, 1.0} like the paper.
// Coverage greedily picks targets by descending request count (ties: smaller
// first), i.e. the optimal static cache content for hit-count.
TraceStats ComputeTraceStats(const Trace& trace, std::vector<double> fractions = {});

}  // namespace lard

#endif  // SRC_TRACE_TRACE_STATS_H_
