#include "src/trace/clf.h"

#include <cstdio>
#include <cstring>
#include <ctime>
#include <istream>

namespace lard {
namespace {

const char* const kMonths[12] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                 "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

int MonthIndex(const std::string& name) {
  for (int i = 0; i < 12; ++i) {
    if (name == kMonths[i]) {
      return i;
    }
  }
  return -1;
}

// Days since epoch for a civil date (Howard Hinnant's algorithm); avoids
// timegm portability issues.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t year = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(year + (*m <= 2));
}

}  // namespace

StatusOr<int64_t> ParseClfTimestamp(const std::string& text) {
  // dd/Mon/yyyy:HH:MM:SS +zzzz
  int day, year, hour, minute, second, tz_sign_hours_minutes;
  char month_name[4] = {0};
  char sign = '+';
  if (std::sscanf(text.c_str(), "%d/%3s/%d:%d:%d:%d %c%d", &day, month_name, &year, &hour, &minute,
                  &second, &sign, &tz_sign_hours_minutes) != 8) {
    return InvalidArgumentError("bad CLF timestamp: " + text);
  }
  const int month = MonthIndex(month_name);
  if (month < 0 || day < 1 || day > 31 || hour > 23 || minute > 59 || second > 60) {
    return InvalidArgumentError("bad CLF timestamp fields: " + text);
  }
  int64_t seconds = DaysFromCivil(year, month + 1, day) * 86400 + hour * 3600 + minute * 60 + second;
  const int tz_hours = tz_sign_hours_minutes / 100;
  const int tz_minutes = tz_sign_hours_minutes % 100;
  const int64_t tz_offset = tz_hours * 3600 + tz_minutes * 60;
  // +0600 means local = UTC + 6h, so epoch = local - offset.
  seconds += (sign == '-') ? tz_offset : -tz_offset;
  return seconds * 1000000;
}

std::string FormatClfTimestamp(int64_t timestamp_us) {
  int64_t seconds = timestamp_us / 1000000;
  int64_t days = seconds / 86400;
  int64_t rem = seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  int y = 0;
  unsigned m = 0;
  unsigned d = 0;
  CivilFromDays(days, &y, &m, &d);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%02u/%s/%04d:%02lld:%02lld:%02lld +0000", d, kMonths[m - 1], y,
                static_cast<long long>(rem / 3600), static_cast<long long>((rem / 60) % 60),
                static_cast<long long>(rem % 60));
  return buf;
}

StatusOr<ClfRecord> ParseClfLine(const std::string& line) {
  ClfRecord record;
  // host ident user [timestamp] "request" status bytes
  const size_t host_end = line.find(' ');
  if (host_end == std::string::npos) {
    return InvalidArgumentError("no host field");
  }
  record.client_host = line.substr(0, host_end);

  const size_t ts_open = line.find('[', host_end);
  const size_t ts_close = line.find(']', ts_open);
  if (ts_open == std::string::npos || ts_close == std::string::npos) {
    return InvalidArgumentError("no timestamp");
  }
  auto ts = ParseClfTimestamp(line.substr(ts_open + 1, ts_close - ts_open - 1));
  if (!ts.ok()) {
    return ts.status();
  }
  record.timestamp_us = ts.value();

  const size_t req_open = line.find('"', ts_close);
  const size_t req_close = line.find('"', req_open + 1);
  if (req_open == std::string::npos || req_close == std::string::npos) {
    return InvalidArgumentError("no request field");
  }
  const std::string request = line.substr(req_open + 1, req_close - req_open - 1);
  {
    const size_t sp1 = request.find(' ');
    if (sp1 == std::string::npos) {
      return InvalidArgumentError("bad request line: " + request);
    }
    const size_t sp2 = request.find(' ', sp1 + 1);
    record.method = request.substr(0, sp1);
    record.path = sp2 == std::string::npos ? request.substr(sp1 + 1)
                                           : request.substr(sp1 + 1, sp2 - sp1 - 1);
    if (record.path.empty()) {
      return InvalidArgumentError("empty path: " + request);
    }
  }

  int status = 0;
  long long bytes = 0;
  char bytes_buf[32] = {0};
  if (std::sscanf(line.c_str() + req_close + 1, " %d %31s", &status, bytes_buf) != 2) {
    return InvalidArgumentError("no status/bytes");
  }
  record.status = status;
  if (std::strcmp(bytes_buf, "-") != 0) {
    char* end = nullptr;
    bytes = std::strtoll(bytes_buf, &end, 10);
    if (end == nullptr || *end != '\0' || bytes < 0) {
      return InvalidArgumentError("bad byte count");
    }
  }
  record.response_bytes = static_cast<uint64_t>(bytes);
  return record;
}

std::string FormatClfLine(const ClfRecord& record) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf), "%s - - [%s] \"%s %s HTTP/1.0\" %d %llu",
                record.client_host.c_str(), FormatClfTimestamp(record.timestamp_us).c_str(),
                record.method.c_str(), record.path.c_str(), record.status,
                static_cast<unsigned long long>(record.response_bytes));
  return buf;
}

std::vector<ClfRecord> ParseClfStream(std::istream& in, size_t* skipped) {
  std::vector<ClfRecord> records;
  size_t bad = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    auto record = ParseClfLine(line);
    if (record.ok()) {
      records.push_back(std::move(record.value()));
    } else {
      ++bad;
    }
  }
  if (skipped != nullptr) {
    *skipped = bad;
  }
  return records;
}

}  // namespace lard
