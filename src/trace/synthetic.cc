#include "src/trace/synthetic.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/util/rng.h"

namespace lard {
namespace {

// A generated page: its HTML target plus the embedded-object targets that are
// fetched together with it. The per-page object lists are fixed across the
// whole trace so repeated visits to a page touch the same working set — this
// is what gives LARD a stable partitioning to exploit.
struct Page {
  TargetId html;
  std::vector<TargetId> objects;
};

uint64_t ClampSize(double raw, const SyntheticTraceConfig& config) {
  const double clamped =
      std::min(std::max(raw, static_cast<double>(config.min_size_bytes)),
               static_cast<double>(config.max_size_bytes));
  return static_cast<uint64_t>(clamped);
}

uint64_t SampleObjectSize(Rng& rng, const SyntheticTraceConfig& config) {
  double raw = 0.0;
  if (rng.NextBool(config.tail_probability)) {
    raw = rng.NextPareto(config.tail_pareto_scale, config.tail_pareto_alpha);
  } else {
    raw = rng.NextLogNormal(config.object_lognorm_mu, config.object_lognorm_sigma);
  }
  return ClampSize(raw, config);
}

}  // namespace

Trace GenerateSyntheticTrace(const SyntheticTraceConfig& config) {
  LARD_CHECK(config.num_pages > 0);
  LARD_CHECK(config.num_sessions >= 0);
  LARD_CHECK(config.num_clients > 0);

  Rng rng(config.seed);
  Trace trace;

  // 1. Build the corpus.
  std::vector<Page> pages;
  pages.reserve(static_cast<size_t>(config.num_pages));
  for (int64_t p = 0; p < config.num_pages; ++p) {
    Page page;
    const std::string prefix = "/page" + std::to_string(p);
    const uint64_t html_size =
        ClampSize(rng.NextLogNormal(config.html_lognorm_mu, config.html_lognorm_sigma), config);
    page.html = trace.catalog().Intern(prefix + "/index.html", html_size);
    // Geometric with mean `embedded_per_page_mean` => success prob 1/mean.
    const uint64_t num_objects =
        config.embedded_per_page_mean <= 1.0
            ? 1
            : rng.NextGeometric(1.0 / config.embedded_per_page_mean);
    for (uint64_t k = 0; k < num_objects; ++k) {
      page.objects.push_back(trace.catalog().Intern(
          prefix + "/obj" + std::to_string(k) + ".dat", SampleObjectSize(rng, config)));
    }
    pages.push_back(std::move(page));
  }

  // 2. Generate sessions. Popularity over pages is Zipf-like.
  ZipfSampler page_popularity(pages.size(), config.zipf_alpha);
  int64_t clock_us = 0;
  for (int64_t s = 0; s < config.num_sessions; ++s) {
    clock_us +=
        static_cast<int64_t>(rng.NextExponential(config.session_interarrival_mean_s * 1e6));
    TraceSession session;
    session.client_id = static_cast<uint32_t>(rng.NextBelow(static_cast<uint64_t>(config.num_clients)));
    session.start_us = clock_us;

    const uint64_t num_page_visits =
        config.pages_per_session_mean <= 1.0
            ? 1
            : rng.NextGeometric(1.0 / config.pages_per_session_mean);
    int64_t offset_us = 0;
    for (uint64_t v = 0; v < num_page_visits; ++v) {
      const Page& page = pages[page_popularity.Sample(rng)];
      if (config.pipeline_embedded_objects) {
        // Batch 1: the HTML. Batch 2: all embedded objects, pipelined, sent
        // once the HTML response has been parsed by the browser.
        session.batches.push_back(TraceBatch{offset_us, {page.html}});
        if (!page.objects.empty()) {
          // Nominal parse delay; replay treats it as think time.
          offset_us += 50 * 1000;
          session.batches.push_back(TraceBatch{offset_us, page.objects});
        }
      } else {
        TraceBatch batch;
        batch.offset_us = offset_us;
        batch.targets.push_back(page.html);
        batch.targets.insert(batch.targets.end(), page.objects.begin(), page.objects.end());
        session.batches.push_back(std::move(batch));
      }
      offset_us += static_cast<int64_t>(rng.NextExponential(config.think_time_mean_s * 1e6));
    }
    trace.sessions().push_back(std::move(session));
  }

  return trace;
}

SyntheticTraceConfig SmallTraceConfig(uint64_t seed) {
  SyntheticTraceConfig config;
  config.seed = seed;
  config.num_pages = 400;
  config.num_sessions = 4000;
  config.num_clients = 64;
  return config;
}

}  // namespace lard
