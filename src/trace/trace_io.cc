#include "src/trace/trace_io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace lard {
namespace {

constexpr char kMagic[8] = {'L', 'A', 'R', 'D', 'T', 'R', 'C', '1'};
constexpr uint32_t kMaxCount = 1u << 28;  // structural sanity bound

void PutU32(std::ostream& out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out.write(buf, 4);
}

void PutU64(std::ostream& out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out.write(buf, 8);
}

void PutStr(std::ostream& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool GetU32(std::istream& in, uint32_t* v) {
  char buf[4];
  if (!in.read(buf, 4)) {
    return false;
  }
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<uint8_t>(buf[i])) << (8 * i);
  }
  return true;
}

bool GetU64(std::istream& in, uint64_t* v) {
  char buf[8];
  if (!in.read(buf, 8)) {
    return false;
  }
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<uint8_t>(buf[i])) << (8 * i);
  }
  return true;
}

bool GetStr(std::istream& in, std::string* s) {
  uint32_t len = 0;
  if (!GetU32(in, &len) || len > kMaxCount) {
    return false;
  }
  s->resize(len);
  return static_cast<bool>(in.read(s->data(), len));
}

}  // namespace

Status WriteTrace(const Trace& trace, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  PutU32(out, static_cast<uint32_t>(trace.catalog().size()));
  for (TargetId id = 0; id < trace.catalog().size(); ++id) {
    const Target& target = trace.catalog().Get(id);
    PutStr(out, target.path);
    PutU64(out, target.size_bytes);
  }
  PutU32(out, static_cast<uint32_t>(trace.sessions().size()));
  for (const TraceSession& session : trace.sessions()) {
    PutU32(out, session.client_id);
    PutU64(out, static_cast<uint64_t>(session.start_us));
    PutU32(out, static_cast<uint32_t>(session.batches.size()));
    for (const TraceBatch& batch : session.batches) {
      PutU64(out, static_cast<uint64_t>(batch.offset_us));
      PutU32(out, static_cast<uint32_t>(batch.targets.size()));
      for (const TargetId id : batch.targets) {
        PutU32(out, id);
      }
    }
  }
  if (!out) {
    return IoError("trace write failed");
  }
  return Status::Ok();
}

Status WriteTraceFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return IoError("cannot open for writing: " + path);
  }
  return WriteTrace(trace, out);
}

StatusOr<Trace> ReadTrace(std::istream& in) {
  char magic[8];
  if (!in.read(magic, sizeof(magic)) || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return InvalidArgumentError("not a LARD trace file (bad magic)");
  }
  Trace trace;
  uint32_t target_count = 0;
  if (!GetU32(in, &target_count) || target_count > kMaxCount) {
    return InvalidArgumentError("corrupt target count");
  }
  for (uint32_t i = 0; i < target_count; ++i) {
    std::string path;
    uint64_t size = 0;
    if (!GetStr(in, &path) || !GetU64(in, &size)) {
      return InvalidArgumentError("corrupt target record");
    }
    const TargetId id = trace.catalog().Intern(path, size);
    if (id != i) {
      return InvalidArgumentError("duplicate target path: " + path);
    }
  }
  uint32_t session_count = 0;
  if (!GetU32(in, &session_count) || session_count > kMaxCount) {
    return InvalidArgumentError("corrupt session count");
  }
  trace.sessions().reserve(session_count);
  for (uint32_t s = 0; s < session_count; ++s) {
    TraceSession session;
    uint64_t start = 0;
    uint32_t batch_count = 0;
    if (!GetU32(in, &session.client_id) || !GetU64(in, &start) || !GetU32(in, &batch_count) ||
        batch_count > kMaxCount) {
      return InvalidArgumentError("corrupt session header");
    }
    session.start_us = static_cast<int64_t>(start);
    session.batches.reserve(batch_count);
    for (uint32_t b = 0; b < batch_count; ++b) {
      TraceBatch batch;
      uint64_t offset = 0;
      uint32_t n = 0;
      if (!GetU64(in, &offset) || !GetU32(in, &n) || n > kMaxCount) {
        return InvalidArgumentError("corrupt batch header");
      }
      batch.offset_us = static_cast<int64_t>(offset);
      batch.targets.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        uint32_t id = 0;
        if (!GetU32(in, &id) || id >= target_count) {
          return InvalidArgumentError("target id out of range");
        }
        batch.targets.push_back(id);
      }
      session.batches.push_back(std::move(batch));
    }
    trace.sessions().push_back(std::move(session));
  }
  return trace;
}

StatusOr<Trace> ReadTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return IoError("cannot open: " + path);
  }
  return ReadTrace(in);
}

}  // namespace lard
