// The paper's heuristic for reconstructing P-HTTP connections from a plain
// access log (Section 6):
//
//   "Any set of requests sent by the same client with a period of less than
//    60s [the default time used by Web servers to close idle HTTP 1.1
//    connections] between any two successive requests were considered to have
//    arrived on a single HTTP 1.1 connection. To model HTTP pipelining, all
//    requests other than the first that are in the same HTTP 1.1 connection
//    and are within [batch window] of each other are considered a batch of
//    pipelined requests."
//
// Both windows are configurable; the batch window value was garbled in our
// copy of the text and defaults to 1 s [reconstructed].
#ifndef SRC_TRACE_SESSION_BUILDER_H_
#define SRC_TRACE_SESSION_BUILDER_H_

#include <cstdint>
#include <vector>

#include "src/trace/clf.h"
#include "src/trace/trace.h"

namespace lard {

struct SessionBuilderConfig {
  int64_t connection_idle_gap_us = 60 * 1000000ll;  // 60 s
  int64_t batch_window_us = 1 * 1000000ll;          // 1 s [reconstructed]
  // Log entries with these statuses carry a body we should replay; everything
  // else (redirects, errors, 304s) is dropped like the paper's simulator does
  // for non-GET/no-content lines.
  bool keep_only_success = true;
};

// Groups `records` into persistent connections and pipelined batches.
// Records may arrive in any order; they are sorted by (client, time).
// Targets are interned into the returned trace's catalog by path, taking the
// first seen non-zero size for each path.
Trace BuildSessions(const std::vector<ClfRecord>& records, const SessionBuilderConfig& config);

}  // namespace lard

#endif  // SRC_TRACE_SESSION_BUILDER_H_
