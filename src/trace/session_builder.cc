#include "src/trace/session_builder.h"

#include <algorithm>
#include <unordered_map>

namespace lard {

Trace BuildSessions(const std::vector<ClfRecord>& records, const SessionBuilderConfig& config) {
  Trace trace;

  // Stable client numbering in order of first appearance.
  std::unordered_map<std::string, uint32_t> client_ids;
  struct Item {
    uint32_t client = 0;
    int64_t timestamp_us = 0;
    TargetId target = 0;
    size_t order = 0;  // original log order, to break timestamp ties stably
  };
  std::vector<Item> items;
  items.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const ClfRecord& record = records[i];
    if (config.keep_only_success && (record.status < 200 || record.status >= 300)) {
      continue;
    }
    if (record.method != "GET") {
      continue;
    }
    auto [it, inserted] =
        client_ids.emplace(record.client_host, static_cast<uint32_t>(client_ids.size()));
    const TargetId target = trace.catalog().Intern(record.path, record.response_bytes);
    items.push_back(Item{it->second, record.timestamp_us, target, i});
  }

  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.client != b.client) {
      return a.client < b.client;
    }
    if (a.timestamp_us != b.timestamp_us) {
      return a.timestamp_us < b.timestamp_us;
    }
    return a.order < b.order;
  });

  for (size_t i = 0; i < items.size();) {
    // One connection: same client, successive gaps < connection_idle_gap_us.
    TraceSession session;
    session.client_id = items[i].client;
    session.start_us = items[i].timestamp_us;

    size_t j = i;
    while (j + 1 < items.size() && items[j + 1].client == items[i].client &&
           items[j + 1].timestamp_us - items[j].timestamp_us < config.connection_idle_gap_us) {
      ++j;
    }
    // items[i..j] form the connection. Split into batches: the first request
    // is always its own batch (the front-end must see its response before the
    // browser can issue embedded-object requests); subsequent requests within
    // batch_window_us of their predecessor join the current batch.
    TraceBatch batch;
    batch.offset_us = 0;
    batch.targets.push_back(items[i].target);
    session.batches.push_back(batch);
    for (size_t k = i + 1; k <= j; ++k) {
      const int64_t gap = items[k].timestamp_us - items[k - 1].timestamp_us;
      if (k == i + 1 || gap >= config.batch_window_us) {
        TraceBatch next;
        next.offset_us = items[k].timestamp_us - session.start_us;
        next.targets.push_back(items[k].target);
        session.batches.push_back(std::move(next));
      } else {
        session.batches.back().targets.push_back(items[k].target);
      }
    }
    trace.sessions().push_back(std::move(session));
    i = j + 1;
  }

  // Present sessions in global start-time order, as a replayer expects.
  std::sort(trace.sessions().begin(), trace.sessions().end(),
            [](const TraceSession& a, const TraceSession& b) { return a.start_us < b.start_us; });
  return trace;
}

}  // namespace lard
