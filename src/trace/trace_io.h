// Binary trace serialization: freeze a generated (or log-reconstructed)
// workload to a file and replay the exact same bytes later — the equivalent
// of archiving the paper's trace segment so simulator and prototype runs are
// comparable across machines and sessions.
//
// Format (little-endian): magic "LARDTRC1",
//   u32 target_count, per target: str path, u64 size;
//   u32 session_count, per session: u32 client, i64 start_us,
//     u32 batch_count, per batch: i64 offset_us, u32 n, n * u32 target ids.
#ifndef SRC_TRACE_TRACE_IO_H_
#define SRC_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "src/trace/trace.h"
#include "src/util/status.h"

namespace lard {

// Serializes `trace` to the stream / file. Overwrites existing files.
Status WriteTrace(const Trace& trace, std::ostream& out);
Status WriteTraceFile(const Trace& trace, const std::string& path);

// Loads a trace previously written by WriteTrace. Validates the magic,
// target-id ranges and structural sanity; never trusts lengths blindly.
StatusOr<Trace> ReadTrace(std::istream& in);
StatusOr<Trace> ReadTraceFile(const std::string& path);

}  // namespace lard

#endif  // SRC_TRACE_TRACE_IO_H_
