// Common Log Format (CLF) reading and writing.
//
// The paper constructs its P-HTTP workload from ordinary web-server access
// logs ("most Web servers do not record whether two requests arrived on the
// same connection"), so the pipeline is: CLF log -> flat request list ->
// session_builder.h heuristics -> Trace. We implement the same pipeline so
// real logs can be replayed, and a writer so the synthetic generator can
// round-trip through it in tests.
#ifndef SRC_TRACE_CLF_H_
#define SRC_TRACE_CLF_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace lard {

// One parsed access-log line (the fields the workload pipeline needs).
struct ClfRecord {
  std::string client_host;
  int64_t timestamp_us = 0;  // Unix epoch microseconds
  std::string method;        // "GET"
  std::string path;          // "/foo/bar.html"
  int status = 200;
  uint64_t response_bytes = 0;
};

// Parses one CLF line:
//   host ident user [dd/Mon/yyyy:HH:MM:SS +zzzz] "METHOD /path HTTP/1.x" status bytes
// Returns InvalidArgument on malformed lines. A "-" byte count parses as 0.
StatusOr<ClfRecord> ParseClfLine(const std::string& line);

// Serializes a record back to CLF (inverse of ParseClfLine up to the unused
// ident/user fields).
std::string FormatClfLine(const ClfRecord& record);

// Parses a whole stream, skipping malformed lines (counted in *skipped when
// non-null). Records are returned in file order.
std::vector<ClfRecord> ParseClfStream(std::istream& in, size_t* skipped = nullptr);

// Converts "[10/Oct/1999:13:55:36 -0600]"-style timestamps (without brackets)
// to epoch microseconds. Exposed for tests.
StatusOr<int64_t> ParseClfTimestamp(const std::string& text);

// Inverse of ParseClfTimestamp; always renders in +0000.
std::string FormatClfTimestamp(int64_t timestamp_us);

}  // namespace lard

#endif  // SRC_TRACE_CLF_H_
