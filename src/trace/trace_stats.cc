#include "src/trace/trace_stats.h"

#include <algorithm>

namespace lard {

TraceStats ComputeTraceStats(const Trace& trace, std::vector<double> fractions) {
  if (fractions.empty()) {
    fractions = {0.97, 0.98, 0.99, 1.0};
  }
  std::sort(fractions.begin(), fractions.end());

  TraceStats stats;
  stats.num_targets = trace.catalog().size();
  stats.num_sessions = trace.sessions().size();
  stats.footprint_bytes = trace.catalog().TotalBytes();

  std::vector<uint64_t> request_counts(trace.catalog().size(), 0);
  size_t batches = 0;
  for (const auto& session : trace.sessions()) {
    batches += session.batches.size();
    for (const auto& batch : session.batches) {
      for (const TargetId id : batch.targets) {
        ++request_counts[id];
        ++stats.num_requests;
        stats.transferred_bytes += trace.catalog().Get(id).size_bytes;
      }
    }
  }
  stats.mean_response_bytes =
      stats.num_requests == 0
          ? 0.0
          : static_cast<double>(stats.transferred_bytes) / static_cast<double>(stats.num_requests);
  stats.mean_requests_per_session =
      stats.num_sessions == 0
          ? 0.0
          : static_cast<double>(stats.num_requests) / static_cast<double>(stats.num_sessions);
  stats.mean_batches_per_session =
      stats.num_sessions == 0
          ? 0.0
          : static_cast<double>(batches) / static_cast<double>(stats.num_sessions);

  // Coverage curve: hottest targets first.
  std::vector<TargetId> order;
  order.reserve(request_counts.size());
  for (TargetId id = 0; id < request_counts.size(); ++id) {
    if (request_counts[id] > 0) {
      order.push_back(id);
    }
  }
  std::sort(order.begin(), order.end(), [&](TargetId a, TargetId b) {
    if (request_counts[a] != request_counts[b]) {
      return request_counts[a] > request_counts[b];
    }
    return trace.catalog().Get(a).size_bytes < trace.catalog().Get(b).size_bytes;
  });

  size_t next_fraction = 0;
  uint64_t covered_requests = 0;
  uint64_t bytes = 0;
  for (size_t i = 0; i < order.size() && next_fraction < fractions.size(); ++i) {
    covered_requests += request_counts[order[i]];
    bytes += trace.catalog().Get(order[i]).size_bytes;
    while (next_fraction < fractions.size() &&
           static_cast<double>(covered_requests) >=
               fractions[next_fraction] * static_cast<double>(stats.num_requests)) {
      stats.coverage.push_back(CoveragePoint{fractions[next_fraction], bytes, i + 1});
      ++next_fraction;
    }
  }
  return stats;
}

}  // namespace lard
