#include "src/trace/trace.h"

namespace lard {

TargetId TargetCatalog::Intern(const std::string& path, uint64_t size_bytes) {
  auto it = by_path_.find(path);
  if (it != by_path_.end()) {
    return it->second;
  }
  const TargetId id = static_cast<TargetId>(targets_.size());
  targets_.push_back(Target{path, size_bytes});
  by_path_.emplace(path, id);
  return id;
}

TargetId TargetCatalog::Find(const std::string& path) const {
  auto it = by_path_.find(path);
  return it == by_path_.end() ? kInvalidTarget : it->second;
}

uint64_t TargetCatalog::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& target : targets_) {
    total += target.size_bytes;
  }
  return total;
}

size_t Trace::total_requests() const {
  size_t n = 0;
  for (const auto& session : sessions_) {
    n += session.total_requests();
  }
  return n;
}

uint64_t Trace::total_response_bytes() const {
  uint64_t total = 0;
  for (const auto& session : sessions_) {
    for (const auto& batch : session.batches) {
      for (const TargetId id : batch.targets) {
        total += catalog_.Get(id).size_bytes;
      }
    }
  }
  return total;
}

double Trace::mean_response_bytes() const {
  const size_t n = total_requests();
  return n == 0 ? 0.0 : static_cast<double>(total_response_bytes()) / static_cast<double>(n);
}

double Trace::mean_requests_per_session() const {
  return sessions_.empty()
             ? 0.0
             : static_cast<double>(total_requests()) / static_cast<double>(sessions_.size());
}

Trace Trace::ToHttp10() const {
  Trace out;
  out.catalog_ = catalog_;
  for (const auto& session : sessions_) {
    for (const auto& batch : session.batches) {
      for (const TargetId id : batch.targets) {
        TraceSession single;
        single.client_id = session.client_id;
        single.start_us = session.start_us + batch.offset_us;
        single.batches.push_back(TraceBatch{0, {id}});
        out.sessions_.push_back(std::move(single));
      }
    }
  }
  return out;
}

}  // namespace lard
