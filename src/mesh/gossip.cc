#include "src/mesh/gossip.h"

#include <cstring>

#include "src/proto/wire.h"

namespace lard {

namespace {

// Doubles travel as their IEEE-754 bit pattern in the codec's little-endian
// u64 (loads and weights are finite by construction; NaN would round-trip
// bit-exactly anyway).
uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

// Serialized sizes, for the count-vs-remaining allocation bound.
constexpr size_t kNodeEntryBytes = 4 + 8 + 8 + 1;  // node + load + weight + state
constexpr size_t kHintBytes = 4 + 4;               // node + target

}  // namespace

std::string EncodeGossipDelta(const GossipDelta& delta) {
  WireWriter writer;
  writer.U32(delta.fe_id);
  writer.U64(delta.seq);
  writer.U64(delta.membership_epoch);
  writer.U32(static_cast<uint32_t>(delta.nodes.size()));
  for (const GossipNodeEntry& entry : delta.nodes) {
    writer.U32(static_cast<uint32_t>(entry.node));
    writer.U64(DoubleBits(entry.load));
    writer.U64(DoubleBits(entry.weight));
    writer.U8(entry.state);
  }
  writer.U32(static_cast<uint32_t>(delta.hints.size()));
  for (const GossipVcacheHint& hint : delta.hints) {
    writer.U32(static_cast<uint32_t>(hint.node));
    writer.U32(hint.target);
  }
  return writer.Take();
}

bool DecodeGossipDelta(std::string_view payload, GossipDelta* delta) {
  WireReader reader(payload);
  delta->fe_id = reader.U32();
  delta->seq = reader.U64();
  delta->membership_epoch = reader.U64();

  const uint32_t node_count = reader.U32();
  if (!reader.ok() || static_cast<size_t>(node_count) > reader.remaining() / kNodeEntryBytes) {
    return false;  // a hostile count must not drive the reserve below
  }
  delta->nodes.clear();
  delta->nodes.reserve(node_count);
  for (uint32_t i = 0; i < node_count; ++i) {
    GossipNodeEntry entry;
    entry.node = static_cast<NodeId>(reader.U32());
    entry.load = BitsDouble(reader.U64());
    entry.weight = BitsDouble(reader.U64());
    entry.state = reader.U8();
    delta->nodes.push_back(entry);
  }

  const uint32_t hint_count = reader.U32();
  if (!reader.ok() || static_cast<size_t>(hint_count) > reader.remaining() / kHintBytes) {
    return false;
  }
  delta->hints.clear();
  delta->hints.reserve(hint_count);
  for (uint32_t i = 0; i < hint_count; ++i) {
    GossipVcacheHint hint;
    hint.node = static_cast<NodeId>(reader.U32());
    hint.target = reader.U32();
    delta->hints.push_back(hint);
  }
  return reader.Complete();
}

}  // namespace lard
