// The receiving half of the front-end mesh: per-peer latest gossip state and
// the aggregated remote-load overlay the local Dispatcher decides over.
//
// Each front-end owns one MeshStateTable. Applying a peer's GossipDelta
// replaces that peer's previous contribution wholesale (deltas are absolute
// per-sender state); RemoteLoad(node) answers the sum of every peer's latest
// reported load on `node`, which DispatcherView::Load adds to the local
// accounting. The table enforces the mesh invariants:
//   * per-peer sequence numbers only move forward (reordered/duplicated
//     deltas are dropped as stale, counted in stale_drops),
//   * per-peer membership epochs never regress (a regression is a protocol
//     violation, counted in epoch_regressions — must stay 0).
//
// Staleness is first-class: the table records when each peer last spoke, and
// OldestPeerAgeUs() is the mesh's gossip lag — what GET /mesh and the
// multi_frontend bench report.
//
// Not thread-safe: lives on its front-end's loop thread (prototype) or the
// simulator's single thread, like the Dispatcher it feeds.
//
// Concurrency contract (docs/CONCURRENCY.md): the table carries no lock of
// its own. In the prototype every access — Apply from gossip receipt, the
// RemoteLoad overlay reads, and the Peers()/age introspection — happens with
// FrontEnd::state_mutex_ held; the owning FrontEnd is the capability, so the
// guard is not expressible as a GUARDED_BY on these members.
#ifndef SRC_MESH_MESH_STATE_H_
#define SRC_MESH_MESH_STATE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/core/cluster_types.h"
#include "src/mesh/gossip.h"

namespace lard {

class Dispatcher;

class MeshStateTable final : public RemoteLoadProvider {
 public:
  explicit MeshStateTable(uint32_t self_fe_id) : self_(self_fe_id) {}

  // Merges a peer's delta. Returns false when the delta was dropped: sent by
  // ourselves, older than (or equal to) the peer's last applied sequence
  // number, or carrying a regressed membership epoch.
  bool Apply(const GossipDelta& delta, int64_t now_us);

  // Forgets a departed peer: its load contribution vanishes from the overlay.
  void RemovePeer(uint32_t fe_id);

  // RemoteLoadProvider: total load the peers' latest deltas place on `node`.
  double RemoteLoad(NodeId node) const override;

  // --- introspection (tests, GET /mesh, the bench's invariant checks) ---
  struct PeerInfo {
    uint32_t fe_id = 0;
    uint64_t seq = 0;
    uint64_t membership_epoch = 0;
    int64_t last_update_us = 0;
    double total_load = 0.0;  // sum of the peer's per-node contributions
  };
  std::vector<PeerInfo> Peers() const;
  size_t peer_count() const { return peers_.size(); }
  uint64_t deltas_applied() const { return deltas_applied_; }
  uint64_t stale_drops() const { return stale_drops_; }
  // Monotone-epoch violations observed. The invariant is that this stays 0.
  uint64_t epoch_regressions() const { return epoch_regressions_; }
  // Highest membership epoch any peer has reported (0 when alone).
  uint64_t max_peer_epoch() const;
  // Age of the most out-of-date peer's last delta — the mesh's gossip lag.
  // 0 when there are no peers.
  int64_t OldestPeerAgeUs(int64_t now_us) const;
  uint32_t self_fe_id() const { return self_; }

 private:
  struct PeerState {
    uint64_t seq = 0;
    uint64_t epoch = 0;
    int64_t updated_us = 0;
    std::vector<double> loads;  // indexed by NodeId, sized to the peer's report
  };

  uint32_t self_ = 0;
  std::map<uint32_t, PeerState> peers_;
  // Aggregated overlay, maintained incrementally on Apply/RemovePeer.
  std::vector<double> remote_sum_;
  uint64_t deltas_applied_ = 0;
  uint64_t stale_drops_ = 0;
  uint64_t epoch_regressions_ = 0;
};

// Cross-checks a peer delta's per-node beliefs (membership state, capacity
// weight — the non-load fields every delta carries) against the local
// dispatcher: returns how many nodes the two disagree on, counting nodes
// the local dispatcher has not even allocated yet. Transient disagreement
// right after a membership change is normal; *persistent* divergence means
// a replica missed control-plane news — the prototype publishes it as the
// lard_mesh_divergence gauge and the simulator counts divergent deltas.
uint64_t CountBeliefDivergence(const GossipDelta& delta, const Dispatcher& dispatcher);

// Builds this front-end's outgoing delta from its dispatcher's state: one
// entry per node slot carrying the dispatcher's *local* load (never the
// gossip overlay — re-exporting remote load would double-count it on the
// next hop), plus the collected vcache hints.
GossipDelta BuildGossipDelta(uint32_t fe_id, uint64_t seq, const Dispatcher& dispatcher,
                             std::vector<GossipVcacheHint> hints);

}  // namespace lard

#endif  // SRC_MESH_MESH_STATE_H_
