// Gossip wire format for the replicated front-end tier (the "shared-state
// mesh"). The paper's front-end is a single CPU that saturates at ~10
// back-ends (Section 8.2); to scale past that we run N front-ends, each with
// its own Dispatcher, and keep their views approximately consistent by
// periodically exchanging *deltas*: per-node load contributions, capacity
// weights, membership state + epoch, and virtual-cache hints (targets the
// sender's connections fetched into the shared back-ends' caches).
//
// Design points, mirroring gossip-based balancer replication (arXiv:1103.1207,
// arXiv:1009.4563):
//   * deltas are absolute per-sender state, not increments — applying the
//     newest delta fully replaces the older one, so loss and reordering only
//     cost staleness, never correctness (loss-tolerant);
//   * a per-sender sequence number orders deltas; the membership epoch
//     (Dispatcher::membership_epoch) orders membership news — a delta whose
//     epoch regresses below what the peer already reported is stale and must
//     be dropped (the mesh's "monotone membership epochs" invariant);
//   * the encoding rides the prototype's existing length-prefixed wire codec
//     and is framed on FramedChannel between front-end peers.
#ifndef SRC_MESH_GOSSIP_H_
#define SRC_MESH_GOSSIP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/cluster_types.h"
#include "src/trace/trace.h"

namespace lard {

// Frame type for gossip deltas on an FE<->FE FramedChannel. Deliberately
// outside the ControlMsg range so a misrouted frame is recognisably foreign.
inline constexpr uint8_t kGossipFrameType = 64;
// FE->FE hello: payload u32 fe_id, sent once when a peer channel opens.
inline constexpr uint8_t kGossipHelloFrameType = 65;

// One node's slice of a delta: the *sender's own* load contribution plus
// what the sender believes about the node (weight, membership state), so
// receivers can cross-check convergence.
struct GossipNodeEntry {
  NodeId node = kInvalidNode;
  double load = 0.0;     // load units the sender itself placed on the node
  double weight = 1.0;   // capacity weight as the sender knows it
  uint8_t state = 0;     // NodeState, as uint8_t
};

// A virtual-cache hint: the sender fetched (or is about to fetch) `target`
// into `node`'s real cache, so receivers should mark it resident too.
struct GossipVcacheHint {
  NodeId node = kInvalidNode;
  TargetId target = kInvalidTarget;
};

// Dedup key for a (node, target) hint — senders accumulate keys between
// ticks so one hot pair costs one wire entry per delta. The packing is the
// protocol's, so both worlds (prototype and simulator) share it from here.
inline uint64_t MakeHintKey(NodeId node, TargetId target) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(node)) << 32) |
         static_cast<uint64_t>(target);
}

inline GossipVcacheHint HintFromKey(uint64_t key) {
  GossipVcacheHint hint;
  hint.node = static_cast<NodeId>(key >> 32);
  hint.target = static_cast<TargetId>(key & 0xffffffffull);
  return hint;
}

struct GossipDelta {
  uint32_t fe_id = 0;             // sender's front-end id
  uint64_t seq = 0;               // per-sender monotone sequence number
  uint64_t membership_epoch = 0;  // sender dispatcher's membership epoch
  std::vector<GossipNodeEntry> nodes;
  std::vector<GossipVcacheHint> hints;
};

std::string EncodeGossipDelta(const GossipDelta& delta);
// Strict: rejects truncated or trailing bytes and (hardening) node/hint
// counts larger than the remaining payload could possibly hold.
bool DecodeGossipDelta(std::string_view payload, GossipDelta* delta);

}  // namespace lard

#endif  // SRC_MESH_GOSSIP_H_
