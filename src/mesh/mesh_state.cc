#include "src/mesh/mesh_state.h"

#include <algorithm>

#include "src/core/dispatcher.h"

namespace lard {

bool MeshStateTable::Apply(const GossipDelta& delta, int64_t now_us) {
  if (delta.fe_id == self_) {
    ++stale_drops_;  // a loop in the mesh wiring; our own state is not remote
    return false;
  }
  auto it = peers_.find(delta.fe_id);
  if (it != peers_.end()) {
    PeerState& peer = it->second;
    if (delta.seq <= peer.seq) {
      ++stale_drops_;  // duplicate or reordered: the newer absolute state won
      return false;
    }
    if (delta.membership_epoch < peer.epoch) {
      // Sequence moved forward but the epoch went back: a protocol violation
      // (epochs are monotone per dispatcher). Drop and flag.
      ++epoch_regressions_;
      return false;
    }
  }

  PeerState& peer = peers_[delta.fe_id];
  // Replace the peer's old contribution in the aggregate.
  for (size_t node = 0; node < peer.loads.size(); ++node) {
    remote_sum_[node] -= peer.loads[node];
  }
  peer.seq = delta.seq;
  peer.epoch = delta.membership_epoch;
  peer.updated_us = now_us;
  peer.loads.assign(peer.loads.size(), 0.0);
  for (const GossipNodeEntry& entry : delta.nodes) {
    if (entry.node < 0) {
      continue;
    }
    const size_t slot = static_cast<size_t>(entry.node);
    if (slot >= peer.loads.size()) {
      peer.loads.resize(slot + 1, 0.0);
    }
    if (slot >= remote_sum_.size()) {
      remote_sum_.resize(slot + 1, 0.0);
    }
    peer.loads[slot] = entry.load;
    remote_sum_[slot] += entry.load;
  }
  ++deltas_applied_;
  return true;
}

void MeshStateTable::RemovePeer(uint32_t fe_id) {
  auto it = peers_.find(fe_id);
  if (it == peers_.end()) {
    return;
  }
  for (size_t node = 0; node < it->second.loads.size(); ++node) {
    remote_sum_[node] -= it->second.loads[node];
  }
  peers_.erase(it);
}

double MeshStateTable::RemoteLoad(NodeId node) const {
  if (node < 0 || static_cast<size_t>(node) >= remote_sum_.size()) {
    return 0.0;
  }
  // Scrub float dust so an all-peers-idle overlay compares exactly equal to
  // no overlay (subtract/re-add cycles need not cancel bit-exactly).
  const double load = remote_sum_[static_cast<size_t>(node)];
  return load > -1e-9 && load < 1e-9 ? 0.0 : load;
}

std::vector<MeshStateTable::PeerInfo> MeshStateTable::Peers() const {
  std::vector<PeerInfo> out;
  out.reserve(peers_.size());
  for (const auto& [fe_id, peer] : peers_) {
    PeerInfo info;
    info.fe_id = fe_id;
    info.seq = peer.seq;
    info.membership_epoch = peer.epoch;
    info.last_update_us = peer.updated_us;
    for (const double load : peer.loads) {
      info.total_load += load;
    }
    out.push_back(info);
  }
  return out;
}

uint64_t MeshStateTable::max_peer_epoch() const {
  uint64_t max_epoch = 0;
  for (const auto& [fe_id, peer] : peers_) {
    max_epoch = std::max(max_epoch, peer.epoch);
  }
  return max_epoch;
}

int64_t MeshStateTable::OldestPeerAgeUs(int64_t now_us) const {
  int64_t oldest = 0;
  for (const auto& [fe_id, peer] : peers_) {
    oldest = std::max(oldest, now_us - peer.updated_us);
  }
  return oldest;
}

uint64_t CountBeliefDivergence(const GossipDelta& delta, const Dispatcher& dispatcher) {
  uint64_t divergent = 0;
  for (const GossipNodeEntry& entry : delta.nodes) {
    if (entry.node < 0) {
      continue;
    }
    if (entry.node >= dispatcher.num_node_slots()) {
      ++divergent;  // the peer knows a node we have not seen join yet
      continue;
    }
    if (entry.state != static_cast<uint8_t>(dispatcher.node_state(entry.node)) ||
        entry.weight != dispatcher.NodeWeight(entry.node)) {
      ++divergent;
    }
  }
  return divergent;
}

GossipDelta BuildGossipDelta(uint32_t fe_id, uint64_t seq, const Dispatcher& dispatcher,
                             std::vector<GossipVcacheHint> hints) {
  GossipDelta delta;
  delta.fe_id = fe_id;
  delta.seq = seq;
  delta.membership_epoch = dispatcher.membership_epoch();
  delta.nodes.reserve(static_cast<size_t>(dispatcher.num_node_slots()));
  for (NodeId node = 0; node < dispatcher.num_node_slots(); ++node) {
    GossipNodeEntry entry;
    entry.node = node;
    entry.load = dispatcher.NodeLoad(node);  // local accounting only
    entry.weight = dispatcher.NodeWeight(node);
    entry.state = static_cast<uint8_t>(dispatcher.node_state(node));
    delta.nodes.push_back(entry);
  }
  delta.hints = std::move(hints);
  return delta;
}

}  // namespace lard
