#include "src/admin/admin_server.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <time.h>

#include <cerrno>
#include <cstring>

#include "src/net/socket.h"
#include "src/util/logging.h"

namespace lard {
namespace {

int64_t NowUs() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

// "/metrics?format=json" -> {"/metrics", "format=json"}.
std::pair<std::string, std::string> SplitQuery(const std::string& path) {
  const size_t q = path.find('?');
  if (q == std::string::npos) {
    return {path, ""};
  }
  return {path.substr(0, q), path.substr(q + 1)};
}

}  // namespace

AdminResponse AdminResponse::Error(int status, const std::string& message) {
  AdminResponse response;
  response.status = status;
  std::string escaped;
  for (const char c : message) {
    if (c == '"' || c == '\\') {
      escaped.push_back('\\');
    }
    escaped.push_back(c);
  }
  response.body = "{\"error\":\"" + escaped + "\"}";
  return response;
}

AdminServer::AdminServer(EventLoop* loop, MetricsRegistry* metrics)
    : loop_(loop), metrics_(metrics) {
  LARD_CHECK(loop_ != nullptr);
  if (metrics_ != nullptr) {
    latency_us_ = metrics_->Histogram("lard_admin_request_us");
  }
}

AdminServer::~AdminServer() { alive_.Invalidate(); }

void AdminServer::Route(const std::string& method, const std::string& path,
                        AdminHandler handler) {
  exact_[method + " " + path] = std::move(handler);
}

void AdminServer::RoutePrefix(const std::string& method, const std::string& prefix,
                              AdminHandler handler) {
  prefixes_.emplace_back(method + " " + prefix, std::move(handler));
}

void AdminServer::Start(uint16_t port) {
  auto listener = ListenTcp(port, &port_);
  LARD_CHECK(listener.ok()) << listener.status().ToString();
  listener_ = std::move(listener.value());
  LARD_CHECK_OK(SetNonBlocking(listener_.get(), true));
  loop_->Register(listener_.get(), EPOLLIN, [this](uint32_t events) { OnAccept(events); });
  LARD_LOG(INFO) << "admin server listening on 127.0.0.1:" << port_;
}

void AdminServer::OnAccept(uint32_t) {
  while (true) {
    const int fd = ::accept4(listener_.get(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      if (errno == EINTR) {
        continue;
      }
      LARD_LOG(ERROR) << "admin accept: " << std::strerror(errno);
      return;
    }
    (void)SetTcpNoDelay(fd);
    auto conn = std::make_unique<AdminConn>();
    AdminConn* raw = conn.get();
    raw->id = next_conn_id_++;
    raw->conn = std::make_unique<Connection>(loop_, UniqueFd(fd));
    raw->conn->set_on_data([this, id = raw->id](std::string_view data) {
      auto it = conns_.find(id);
      if (it != conns_.end()) {
        OnData(it->second.get(), data);
      }
    });
    raw->conn->set_on_close([this, id = raw->id]() {
      auto it = conns_.find(id);
      if (it != conns_.end()) {
        DestroyConn(it->second.get());
      }
    });
    raw->conn->Start();
    conns_.emplace(raw->id, std::move(conn));
  }
}

void AdminServer::OnData(AdminConn* conn, std::string_view data) {
  if (conn->closed) {
    return;
  }
  std::vector<HttpRequest> requests;
  if (conn->parser.Feed(data, &requests) == RequestParser::State::kError) {
    WriteAndClose(conn, HttpRequest{}, AdminResponse::Error(400, "malformed request"));
    return;
  }
  if (requests.empty()) {
    return;
  }
  // One request per connection (the API always closes); extra pipelined
  // requests are ignored.
  const int64_t start_us = NowUs();
  AdminResponse response = Dispatch(requests.front());
  ++requests_served_;
  if (latency_us_ != nullptr) {
    latency_us_->Observe(static_cast<double>(NowUs() - start_us));
  }
  WriteAndClose(conn, requests.front(), std::move(response));
}

AdminResponse AdminServer::Dispatch(const HttpRequest& request) {
  const auto [path, query] = SplitQuery(request.path);

  if (request.method == "GET" && path == "/") {
    AdminResponse index;
    index.content_type = "text/plain";
    index.body =
        "lard cluster admin API\n"
        "  GET  /metrics            plaintext metrics (?format=json for JSON)\n"
        "  GET  /nodes              membership + health snapshot\n"
        "  POST /nodes/add          start a node and join it to the cluster\n"
        "  POST /nodes/<id>/drain   stop new assignments to a node\n"
        "  POST /nodes/<id>/remove  remove a node now\n"
        "  POST /policy             switch policy (body: wrr | lard | extlard)\n"
        "  GET  /timeseries         sampled series (?metric=&component=&window=<ms>)\n"
        "  GET  /cluster/health     merged SLO watchdog verdict + freshest samples\n"
        "  GET  /trace              recent request traces (?component=&format=chrome)\n"
        "  POST /slowlog            set the slow-request log threshold (body: µs)\n";
    return index;
  }
  if (request.method == "GET" && path == "/metrics") {
    if (metrics_ == nullptr) {
      return AdminResponse::Error(404, "no metrics registry");
    }
    if (before_metrics_) {
      before_metrics_();
    }
    AdminResponse response;
    if (query == "format=json") {
      response.body = metrics_->RenderJson();
    } else {
      response.content_type = "text/plain";
      response.body = metrics_->RenderText();
    }
    return response;
  }

  const std::string exact_key = request.method + " " + path;
  auto it = exact_.find(exact_key);
  if (it != exact_.end()) {
    return it->second(request, "");
  }
  for (const auto& [key, handler] : prefixes_) {
    if (exact_key.rfind(key, 0) == 0) {
      return handler(request, exact_key.substr(key.size()));
    }
  }
  return AdminResponse::Error(404, "no such endpoint: " + request.method + " " + path);
}

void AdminServer::WriteAndClose(AdminConn* conn, const HttpRequest& request,
                                AdminResponse response) {
  HttpResponse http;
  http.version = request.version;
  http.status = response.status;
  http.reason = ReasonPhrase(response.status);
  http.headers.Add("Content-Type", response.content_type);
  http.headers.Add("Connection", "close");
  http.body = std::move(response.body);
  conn->conn->Write(http.Serialize());
  conn->conn->CloseAfterFlush();
  DestroyConn(conn);
}

void AdminServer::DestroyConn(AdminConn* conn) {
  if (conn->closed) {
    return;
  }
  conn->closed = true;
  loop_->Post(alive_.Guard([this, id = conn->id]() { conns_.erase(id); }));
}

}  // namespace lard
