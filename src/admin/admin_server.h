// The cluster's administrative HTTP server (in the spirit of RethinkDB's
// administrative HTTP interface): a small HTTP/1.0 API served off the
// front-end's event loop, reusing the prototype's own request parser and
// connection plumbing — the admin plane rides the same stack it administers.
//
// Built-in endpoints:
//   GET /            tiny index of routes
//   GET /metrics     MetricsRegistry in plaintext exposition format
//                    (?format=json for the JSON rendering)
// Everything else (GET /nodes, POST /nodes/<id>/drain, POST /nodes/<id>/
// remove, POST /nodes/add, POST /policy) is registered by the owner via
// Route()/RoutePrefix(), so the server itself stays cluster-agnostic.
//
// Handlers run on the server's loop thread — exactly what the membership
// operations need, since the dispatcher is single-threaded on that loop.
// Responses always close (HTTP/1.0 style): the admin plane trades connection
// reuse for simplicity.
#ifndef SRC_ADMIN_ADMIN_SERVER_H_
#define SRC_ADMIN_ADMIN_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/http/http_message.h"
#include "src/http/request_parser.h"
#include "src/net/connection.h"
#include "src/net/event_loop.h"
#include "src/util/liveness.h"
#include "src/util/metrics.h"

namespace lard {

struct AdminResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;

  static AdminResponse Json(std::string body) { return {200, "application/json", std::move(body)}; }
  static AdminResponse Error(int status, const std::string& message);
};

// `tail` is the path remainder after a RoutePrefix match ("7/drain" for
// prefix "/nodes/" and path "/nodes/7/drain"); empty for exact routes.
using AdminHandler = std::function<AdminResponse(const HttpRequest& request,
                                                 const std::string& tail)>;

class AdminServer {
 public:
  // `loop` must outlive the server; `metrics` may be null (then /metrics
  // serves an empty registry rendering is skipped and returns 404).
  AdminServer(EventLoop* loop, MetricsRegistry* metrics);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  // Registration (before Start or on the loop thread).
  void Route(const std::string& method, const std::string& path, AdminHandler handler);
  void RoutePrefix(const std::string& method, const std::string& prefix, AdminHandler handler);
  // Runs just before every /metrics render, on the loop thread — the owner's
  // chance to refresh bridged gauges (per-node counters held elsewhere).
  void set_before_metrics(std::function<void()> hook) { before_metrics_ = std::move(hook); }

  // Loop thread. Binds 127.0.0.1:`port` (0 = ephemeral; see port() after).
  void Start(uint16_t port);

  uint16_t port() const { return port_; }
  uint64_t requests_served() const { return requests_served_; }

 private:
  struct AdminConn {
    uint64_t id = 0;
    std::unique_ptr<Connection> conn;
    RequestParser parser;
    bool closed = false;
  };

  void OnAccept(uint32_t events);
  void OnData(AdminConn* conn, std::string_view data);
  void DestroyConn(AdminConn* conn);
  AdminResponse Dispatch(const HttpRequest& request);
  void WriteAndClose(AdminConn* conn, const HttpRequest& request, AdminResponse response);

  EventLoop* loop_;
  MetricsRegistry* metrics_;
  // Invalidated first in the destructor so deferred-reclaim posts (DestroyConn
  // defers the map erase) become no-ops once the server is gone.
  LivenessToken alive_;
  UniqueFd listener_;
  uint16_t port_ = 0;

  std::unordered_map<std::string, AdminHandler> exact_;  // key = "METHOD path"
  // Checked in registration order after exact routes miss.
  std::vector<std::pair<std::string, AdminHandler>> prefixes_;  // key = "METHOD prefix"
  std::function<void()> before_metrics_;

  std::unordered_map<uint64_t, std::unique_ptr<AdminConn>> conns_;
  uint64_t next_conn_id_ = 1;
  uint64_t requests_served_ = 0;
  MetricHistogram* latency_us_ = nullptr;
};

}  // namespace lard

#endif  // SRC_ADMIN_ADMIN_SERVER_H_
